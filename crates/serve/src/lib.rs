//! # prox-serve — the concurrent service layer
//!
//! PROX's summarization engine (§6, Algorithm 1) is a library; the paper's
//! system (§7) exposes it to users. This crate is that exposure path for
//! the workspace: a std-only, multi-threaded TCP server speaking a minimal
//! HTTP/1.1 subset, with three properties the rest of the workspace
//! already enforces in-library carried across the wire:
//!
//! * **Admission control** — a fixed worker pool pulls connections from a
//!   bounded queue ([`queue::Bounded`]); when the queue is full the accept
//!   loop sheds load immediately with `503` + `Retry-After` instead of
//!   letting latency collapse (tail-tolerant, not buffer-everything).
//! * **Budgeted execution** — every request runs under an
//!   [`prox_robust::ExecutionBudget`] derived from the `X-Prox-Budget-Ms`
//!   header (or a server default), so a slow summarization degrades to the
//!   anytime best-so-far answer with a recorded stop reason rather than
//!   hanging the connection. Budgets exhausted *upfront* map to `408`.
//! * **Deterministic caching** — responses are cached in an LRU keyed by a
//!   canonical fingerprint of the request (dataset seed, weights, bounds;
//!   [`cache::SummaryCache`]). Identical seeded requests produce
//!   byte-identical response bodies, so a cache hit is observationally
//!   equivalent to a recompute — and counted in the `prox-obs` registry.
//!
//! Endpoints: `POST /summarize`, `POST /provision`, `GET /datasets`,
//! `GET /healthz`, `GET /metrics` (the prox-obs snapshot). Bodies are
//! [`prox_obs::Json`]; errors map [`prox_robust::ErrorKind`] to HTTP
//! status codes (input → 400, budget → 408, internal → 500).
//!
//! Graceful shutdown: SIGTERM/SIGINT (see [`signal`]) or
//! [`server::ServerHandle::shutdown`] stops accepting, closes the queue,
//! drains already-admitted connections, and cancels in-flight budgets so
//! long runs return their best-so-far summaries promptly.
//!
//! Overload hardening (see [`health`], [`ratelimit`], [`breaker`]):
//! workers run every connection under `catch_unwind`, converting panics
//! to typed 500s and feeding a `healthy`/`degraded`/`draining` state
//! machine surfaced on `/healthz`; per-tenant token buckets keyed by
//! `X-Prox-Tenant` answer hot tenants `429` + `Retry-After` ahead of the
//! queue; and a circuit breaker around the summarize path sheds fast with
//! `503` after consecutive internal failures instead of queueing doomed
//! work. All three run on request-schedule (virtual) clocks so behavior
//! replays byte-identically under `PROX_DETERMINISTIC`.

pub mod breaker;
pub mod cache;
pub mod health;
pub mod http;
pub mod queue;
pub mod ratelimit;
pub mod server;
pub mod service;
pub mod signal;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::{fingerprint, SummaryCache};
pub use health::{Health, HealthState};
pub use http::{Request, Response};
pub use queue::Bounded;
pub use ratelimit::RateLimiter;
pub use server::{Server, ServerConfig, ServerHandle};
pub use signal::{install_signal_handlers, signalled};

/// Lock a mutex, recovering the data if a panicking holder poisoned it.
/// Shared server state (cache, queue) stays structurally valid under
/// poisoning — entries are whole strings swapped atomically under the
/// lock — and the server must never take the process down (rule L1).
pub(crate) fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
