//! A bounded MPMC queue for admission control.
//!
//! The accept loop `try_push`es connections and the worker pool `pop`s
//! them. The queue never blocks producers: when it is full, `try_push`
//! hands the item back so the caller can shed load (`503` + `Retry-After`)
//! instead of building an unbounded backlog. Consumers block, but their
//! wait loop polls a [`BudgetSession`] (rule L3) and wakes on `close`, so
//! shutdown drains the queue deterministically: remaining items are still
//! delivered, then every `pop` returns `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use prox_obs::Gauge;
use prox_robust::BudgetSession;

use crate::lock;

/// Live admission-queue occupancy (all [`Bounded`] queues in the process;
/// in practice the server owns exactly one).
static QUEUE_DEPTH: Gauge = Gauge::new("serve/queue_depth");

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity queue with shed-on-full producers and draining close.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue `item`, or hand it back when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = lock(&self.state);
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        QUEUE_DEPTH.set(state.items.len() as i64);
        self.cond.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item arrives, the queue is closed *and*
    /// drained, or `session`'s budget trips. The poll keeps shutdown
    /// bounded even if a notify is missed.
    pub fn pop(&self, session: &mut BudgetSession) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                QUEUE_DEPTH.set(state.items.len() as i64);
                return Some(item);
            }
            if state.closed || session.check().is_err() {
                return None;
            }
            let (guard, _timeout) = self
                .cond
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Close the queue: producers are rejected from now on; consumers
    /// drain what is left, then observe `None`.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.cond.notify_all();
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_robust::ExecutionBudget;
    use std::sync::Arc;

    fn session() -> BudgetSession {
        ExecutionBudget::unlimited().with_deadline_ms(2_000).start()
    }

    #[test]
    fn push_pop_is_fifo() {
        let q = Bounded::new(4);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let mut s = session();
        assert_eq!(q.pop(&mut s), Some(1));
        assert_eq!(q.pop(&mut s), Some(2));
    }

    #[test]
    fn full_queue_hands_item_back() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_yields_none() {
        let q = Bounded::new(4);
        assert!(q.try_push(7).is_ok());
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue rejects producers");
        let mut s = session();
        assert_eq!(q.pop(&mut s), Some(7), "items enqueued pre-close drain");
        assert_eq!(q.pop(&mut s), None);
    }

    #[test]
    fn budget_trip_unblocks_consumer() {
        let q: Bounded<u8> = Bounded::new(1);
        let mut s = ExecutionBudget::unlimited().with_deadline_ms(1).start();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(q.pop(&mut s), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_deliver_everything() {
        let q = Arc::new(Bounded::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..16u64 {
                    while q.try_push(t * 100 + i).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut s = session();
                let mut got = Vec::new();
                while let Some(v) = q.pop(&mut s) {
                    got.push(v);
                    if got.len() == 64 {
                        break;
                    }
                }
                got
            })
        };
        for h in handles {
            let _ = h.join();
        }
        let got = consumer.join().unwrap_or_default();
        assert_eq!(got.len(), 64);
    }
}
