//! Per-tenant token-bucket rate limiting, ahead of the admission queue.
//!
//! Requests carrying an `X-Prox-Tenant` header draw one token from that
//! tenant's bucket before any summarization work is admitted; an empty
//! bucket is answered `429` + `Retry-After` on the spot. Requests without
//! the header bypass the limiter entirely (single-tenant deployments and
//! the pre-existing test surface are unaffected).
//!
//! ## Clocks
//!
//! In wall-clock mode each bucket refills continuously at `rate`
//! tokens/second from the elapsed [`Instant`]. Under `PROX_DETERMINISTIC`
//! wall time would break byte-stable replays (rule L2), so the bucket
//! runs on a *virtual clock*: every admission attempt for a tenant
//! advances that tenant's clock by [`DET_TICK_MS`] and refills
//! accordingly. The allow/deny schedule is then a pure function of the
//! request sequence — same schedule, same 429s.
//!
//! Denials are counted in `serve/rate_limited` and tallied per tenant in
//! a process-global table surfaced by `/metrics.json` and `prox stats`.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use prox_obs::Counter;

use crate::lock;

static RATE_LIMITED: Counter = Counter::new("serve/rate_limited");
/// Process-global per-tenant denial tally (bounded by [`MAX_TENANTS`]).
static DENIED_BY_TENANT: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// Virtual milliseconds credited per admission attempt in deterministic
/// mode.
pub const DET_TICK_MS: u64 = 100;
/// Cap on distinct tenant buckets (and on the denial tally); beyond it
/// the lexicographically-first bucket is evicted, deterministically.
pub const MAX_TENANTS: usize = 1024;

/// The limiter's verdict for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// A token was available; run the request.
    Admit,
    /// Bucket empty: answer `429` with this `Retry-After`.
    Deny {
        /// Whole seconds until one token will have refilled.
        retry_after_secs: u64,
    },
}

struct Bucket {
    tokens: f64,
    last: Option<Instant>,
}

/// Token buckets keyed by tenant name.
pub struct RateLimiter {
    rate: f64,
    burst: f64,
    deterministic: bool,
    buckets: BTreeMap<String, Bucket>,
}

impl RateLimiter {
    /// A limiter refilling `rate` tokens/second up to `burst` per tenant.
    /// `rate <= 0` disables limiting (every request admitted);
    /// `deterministic` selects the virtual clock.
    pub fn new(rate: f64, burst: f64, deterministic: bool) -> RateLimiter {
        RateLimiter {
            rate,
            burst: burst.max(1.0),
            deterministic,
            buckets: BTreeMap::new(),
        }
    }

    /// Draw one token for `tenant`, refilling its bucket first.
    pub fn admit(&mut self, tenant: &str) -> Admission {
        if self.rate <= 0.0 {
            return Admission::Admit;
        }
        if !self.buckets.contains_key(tenant) {
            if self.buckets.len() >= MAX_TENANTS {
                let evict = self.buckets.keys().next().cloned();
                if let Some(k) = evict {
                    self.buckets.remove(&k);
                }
            }
            self.buckets.insert(
                tenant.to_owned(),
                Bucket {
                    tokens: self.burst,
                    last: None,
                },
            );
        }
        let (rate, burst, deterministic) = (self.rate, self.burst, self.deterministic);
        let Some(bucket) = self.buckets.get_mut(tenant) else {
            return Admission::Admit; // unreachable: inserted above
        };
        if deterministic {
            bucket.tokens = (bucket.tokens + rate * DET_TICK_MS as f64 / 1_000.0).min(burst);
        } else {
            let now = Instant::now();
            if let Some(last) = bucket.last {
                let elapsed = now.saturating_duration_since(last).as_secs_f64();
                bucket.tokens = (bucket.tokens + elapsed * rate).min(burst);
            }
            bucket.last = Some(now);
        }
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            return Admission::Admit;
        }
        let needed = 1.0 - bucket.tokens;
        let retry_after_secs = ((needed / rate).ceil() as u64).max(1);
        RATE_LIMITED.incr();
        note_denial(tenant);
        Admission::Deny { retry_after_secs }
    }
}

fn note_denial(tenant: &str) {
    let mut tally = lock(&DENIED_BY_TENANT);
    if tally.len() >= MAX_TENANTS && !tally.contains_key(tenant) {
        return; // bounded: stop attributing, the counter still counts
    }
    *tally.entry(tenant.to_owned()).or_insert(0) += 1;
}

/// Snapshot of the process-global per-tenant denial tally, sorted by
/// tenant name.
pub fn tenant_denials() -> Vec<(String, u64)> {
    lock(&DENIED_BY_TENANT)
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_refill_replays_the_same_schedule() {
        let run = || {
            let mut rl = RateLimiter::new(2.0, 2.0, true);
            (0..12)
                .map(|i| rl.admit(if i % 2 == 0 { "a" } else { "b" }) == Admission::Admit)
                .collect::<Vec<_>>()
        };
        let first = run();
        assert_eq!(first, run(), "virtual clock must replay identically");
        assert!(first[0] && first[1], "burst admits the first requests");
        assert!(
            first.iter().any(|&ok| !ok),
            "rate 2/s at 10 attempts/s must deny"
        );
    }

    #[test]
    fn denial_carries_a_positive_retry_after() {
        let mut rl = RateLimiter::new(1.0, 1.0, true);
        assert_eq!(rl.admit("t"), Admission::Admit);
        match rl.admit("t") {
            Admission::Deny { retry_after_secs } => assert!(retry_after_secs >= 1),
            Admission::Admit => panic!("second draw must be denied"),
        }
    }

    #[test]
    fn tokens_refill_up_to_burst_only() {
        let mut rl = RateLimiter::new(100.0, 3.0, true);
        // Many virtual ticks cannot exceed the burst of 3.
        for _ in 0..10 {
            let _ = rl.admit("t");
        }
        let admitted = (0..10)
            .filter(|_| rl.admit("t") == Admission::Admit)
            .count();
        // 100/s at 10 virtual ticks/s refills 10 tokens per attempt,
        // clamped to burst — every draw succeeds.
        assert_eq!(admitted, 10);
        let mut strict = RateLimiter::new(0.1, 3.0, true);
        let admitted = (0..10)
            .filter(|_| strict.admit("t") == Admission::Admit)
            .count();
        assert_eq!(admitted, 3, "burst 3 then a slow refill denies the rest");
    }

    #[test]
    fn tenants_are_isolated_and_rate_zero_disables() {
        let mut rl = RateLimiter::new(0.1, 1.0, true);
        assert_eq!(rl.admit("hog"), Admission::Admit);
        assert!(matches!(rl.admit("hog"), Admission::Deny { .. }));
        assert_eq!(rl.admit("quiet"), Admission::Admit, "fresh tenant admits");
        let mut off = RateLimiter::new(0.0, 1.0, true);
        assert!((0..100).all(|_| off.admit("any") == Admission::Admit));
    }

    #[test]
    fn tenant_table_is_bounded() {
        let mut rl = RateLimiter::new(0.1, 1.0, true);
        for i in 0..(MAX_TENANTS + 10) {
            let _ = rl.admit(&format!("tenant-{i:05}"));
        }
        assert!(rl.buckets.len() <= MAX_TENANTS);
    }
}
