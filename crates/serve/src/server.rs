//! The server: accept loop, worker pool, load shedding, graceful drain.
//!
//! One thread accepts; `workers` threads pull admitted connections off a
//! bounded [`Bounded`] queue. Admission control is strict: a connection
//! either enters the queue or is answered `503` + `Retry-After` on the
//! spot — the server never buffers beyond `queue_capacity`. Shutdown
//! (signal or [`ServerHandle::shutdown`]) cancels the shared
//! [`CancelFlag`], which (a) stops the accept loop, (b) degrades in-flight
//! summarizations to their anytime best-so-far answers, and (c) closes the
//! queue so workers drain what was already admitted and exit.
//!
//! Worker supervision: every connection is handled under `catch_unwind`.
//! A panicking handler (a bug, or the `panic` fault site) is converted to
//! a typed 500 on the wire, counted in `serve/worker_panics`, reported to
//! the [`Health`] state machine and the circuit breaker — and the worker
//! keeps draining the queue, so one poisoned request never drops the
//! requests queued behind it. A second `catch_unwind` around the whole
//! loop restarts it if a panic ever escapes the per-connection boundary.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use prox_obs::{Counter, Gauge};
use prox_robust::{CancelFlag, ExecutionBudget, ProxError};

use crate::breaker::BreakerConfig;
use crate::health::Health;
use crate::http::{self, Response};
use crate::queue::Bounded;
use crate::service::{self, ServiceCtx, StoreState};
use crate::signal;

static SHED: Counter = Counter::new("serve/shed");
static CONNECTIONS: Counter = Counter::new("serve/connections");
/// Workers currently handling a connection (utilization gauge).
static WORKERS_BUSY: Gauge = Gauge::new("serve/workers_busy");

/// Server tunables; [`ServerConfig::default`] matches the CLI defaults.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission queue capacity; beyond it, connections are shed.
    pub queue_capacity: usize,
    /// Summary cache capacity (responses).
    pub cache_capacity: usize,
    /// Wall-clock budget for requests without `X-Prox-Budget-Ms`.
    pub default_budget_ms: u64,
    /// Per-connection I/O deadline (reading the request).
    pub io_deadline_ms: u64,
    /// Seed for deterministic trace ids and the tail-sampling hash.
    pub trace_seed: u64,
    /// Retention rate for healthy-request traces in `[0,1]`; errored,
    /// degraded, and slow requests are always retained.
    pub trace_sample_rate: f64,
    /// Capacity of the retained-trace ring (`/debug/traces`).
    pub trace_capacity: usize,
    /// Per-tenant token-bucket refill rate (tokens/second) for requests
    /// carrying `X-Prox-Tenant`; `0` disables rate limiting.
    pub tenant_rate: f64,
    /// Per-tenant bucket capacity (burst).
    pub tenant_burst: f64,
    /// Consecutive internal failures that trip the summarize circuit
    /// breaker; `0` disables it.
    pub breaker_threshold: u32,
    /// Segment-store directory (`--store <dir>`); when set, summaries
    /// are also served straight off segments on `/summarize/store`.
    pub store_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".to_owned(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 64,
            default_budget_ms: 2_000,
            io_deadline_ms: 10_000,
            trace_seed: 0,
            trace_sample_rate: 1.0,
            trace_capacity: 128,
            tenant_rate: 50.0,
            tenant_burst: 20.0,
            breaker_threshold: 5,
            store_dir: None,
        }
    }
}

/// Constructor namespace for the service (see [`Server::start`]).
pub struct Server;

/// A running server: address, shutdown control, and joinable threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: CancelFlag,
    queue: Arc<Bounded<TcpStream>>,
    health: Health,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and the accept loop, and return a
    /// handle. The listener is non-blocking so the accept loop can poll
    /// the shutdown flag between connections.
    pub fn start(config: ServerConfig) -> Result<ServerHandle, ProxError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ProxError::io(format!("bind {}", config.addr), &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ProxError::io("set_nonblocking", &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ProxError::io("local_addr", &e))?;

        let shutdown = CancelFlag::new();
        let queue = Arc::new(Bounded::new(config.queue_capacity));
        let mut ctx = ServiceCtx::new(
            config.cache_capacity,
            config.default_budget_ms,
            shutdown.clone(),
        )
        .with_trace_settings(
            config.trace_seed,
            config.trace_sample_rate,
            config.trace_capacity,
        )
        .with_resilience(
            config.tenant_rate,
            config.tenant_burst,
            BreakerConfig {
                threshold: config.breaker_threshold,
                seed: config.trace_seed,
                ..BreakerConfig::default()
            },
        );
        if let Some(dir) = &config.store_dir {
            // Refusing to start beats serving 500s off a broken store.
            ctx = ctx.with_store(StoreState::open(dir)?);
        }
        let ctx = Arc::new(ctx);
        let health = ctx.health.clone();

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for ix in 0..config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let ctx = Arc::clone(&ctx);
            let io_deadline_ms = config.io_deadline_ms;
            let spawned = thread::Builder::new()
                .name(format!("prox-serve-worker-{ix}"))
                .spawn(move || supervised_worker(&queue, &ctx, io_deadline_ms))
                .map_err(|e| ProxError::io("spawning worker", &e))?;
            workers.push(spawned);
        }

        let accept = {
            let queue = Arc::clone(&queue);
            let shutdown = shutdown.clone();
            let health = ctx.health.clone();
            thread::Builder::new()
                .name("prox-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &queue, &shutdown, &health))
                .map_err(|e| ProxError::io("spawning accept loop", &e))?
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            queue,
            health,
            accept: Some(accept),
            workers,
        })
    }
}

/// Accept connections until shutdown, shedding with `503` when the
/// admission queue is full, then close the queue so workers drain.
fn accept_loop(
    listener: &TcpListener,
    queue: &Bounded<TcpStream>,
    shutdown: &CancelFlag,
    health: &Health,
) {
    loop {
        // admission loop: bounded by the shutdown flag, not a budget
        if shutdown.is_cancelled() || signal::signalled() {
            shutdown.cancel();
            // Flip health to draining *before* closing the queue: any
            // admitted-but-unserved `/healthz` probe already answers 503.
            health.begin_drain();
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                CONNECTIONS.incr();
                if let Err(stream) = queue.try_push(stream) {
                    shed(stream);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    queue.close();
}

/// Answer a rejected connection immediately: `503` + `Retry-After: 1`.
fn shed(mut stream: TcpStream) {
    SHED.incr();
    prox_obs::window::record_shed();
    let mut resp = Response::json(
        503,
        "{\"error\": \"admission queue full\", \"kind\": \"overload\"}".to_owned(),
    );
    resp.retry_after = Some(1);
    let _ = http::write_response(&mut stream, &resp);
}

/// Supervisor wrapper: restart [`worker_loop`] if a panic ever escapes
/// the per-connection `catch_unwind` boundary (queue bookkeeping, gauge
/// updates). The loop exits normally only when the queue closes, so a
/// worker thread can die early only by leaking through *two* boundaries.
fn supervised_worker(queue: &Bounded<TcpStream>, ctx: &ServiceCtx, io_deadline_ms: u64) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(queue, ctx, io_deadline_ms))) {
            Ok(()) => break,
            Err(_) => ctx.health.note_panic(),
        }
    }
}

/// Pull admitted connections until the queue closes and drains. The pop
/// itself polls the session (rule L3); `note_step` keeps per-worker
/// throughput visible in `steps_taken` if anyone attaches a budget.
fn worker_loop(queue: &Bounded<TcpStream>, ctx: &ServiceCtx, io_deadline_ms: u64) {
    let budget = ExecutionBudget::unlimited();
    let mut session = budget.start();
    while let Some(mut stream) = queue.pop(&mut session) {
        let _ = session.note_step();
        WORKERS_BUSY.add(1);
        // Supervision boundary: a panicking handler (a bug, or the
        // `panic` fault site) becomes a typed 500 and a degraded health
        // state — never a dead worker or a dropped queue.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(&mut stream, ctx, io_deadline_ms)
        }));
        match outcome {
            Ok(()) => ctx.health.note_ok(),
            Err(_) => {
                ctx.health.note_panic();
                ctx.breaker.record_failure();
                let _ = http::write_response(&mut stream, &service::panic_response());
            }
        }
        WORKERS_BUSY.add(-1);
    }
}

/// One connection end to end: budgeted read, routed response, write.
fn handle_connection(stream: &mut TcpStream, ctx: &ServiceCtx, io_deadline_ms: u64) {
    // The read session is cancel-linked so shutdown never blocks on a
    // client that connected but went quiet: the connection is answered
    // (408) and the worker moves on to drain the queue.
    let mut io_session = ExecutionBudget::unlimited()
        .with_deadline_ms(io_deadline_ms)
        .with_cancel(ctx.shutdown.clone())
        .start();
    let parsed = http::read_request(stream, &mut io_session);
    // Fault site: a `conndrop` clause severs the connection here, after
    // the read but before any response — the client sees a reset and its
    // retry-with-backoff path is exercised end to end.
    if parsed.is_ok() && prox_robust::fault::conndrop_fire() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return;
    }
    // `respond` traces, classifies, and stamps `X-Prox-Trace-Id`.
    let response = service::respond(parsed, ctx);
    // A client that hung up mid-response is its own problem.
    let _ = http::write_response(stream, &response);
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone of the shutdown flag (cancel it to begin a graceful stop).
    pub fn shutdown_flag(&self) -> CancelFlag {
        self.shutdown.clone()
    }

    /// Current admission-queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// A clone of the process health handle (tests and the CLI).
    pub fn health(&self) -> Health {
        self.health.clone()
    }

    /// Graceful stop: cancel, let the accept loop close the queue, drain
    /// admitted connections, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.health.begin_drain();
        self.shutdown.cancel();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop has closed the queue by now; workers drain what
        // was admitted, observe `None`, and exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 8,
            default_budget_ms: 5_000,
            io_deadline_ms: 2_000,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn starts_on_ephemeral_port_and_answers_healthz() {
        let handle = Server::start(test_config()).expect("server starts");
        let addr = handle.addr().to_string();
        let (status, body) =
            http::client_request(&addr, "GET", "/healthz", &[], b"", 5_000).expect("request");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));
        handle.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_no_traffic() {
        let handle = Server::start(test_config()).expect("server starts");
        handle.shutdown();
    }

    #[test]
    fn bind_failure_is_a_typed_error() {
        let mut cfg = test_config();
        cfg.addr = "256.0.0.1:0".to_owned();
        match Server::start(cfg) {
            Err(e) => assert_eq!(e.kind(), prox_robust::ErrorKind::Input),
            Ok(_) => panic!("bind to invalid address must fail"),
        }
    }
}
