//! Request handling: routing, parameter parsing, canonical request keys,
//! and the endpoint handlers.
//!
//! ## Endpoint contracts
//!
//! * `POST /summarize` — body (all fields optional): `dataset` (a preset
//!   name from [`presets`] or an inline `{users, movies, ratings_per_user,
//!   seed}` object), `selection` (`{"all": true}`, `{"search": s}`,
//!   `{"genre": g, "year": y}`, or `{"titles": [..]}`), `w_dist`,
//!   `target_dist`, `target_size`, `steps`, `agg` (`"MAX"|"MIN"|"SUM"|
//!   "COUNT"`), and `budget_steps` (a deterministic step cap). The
//!   wall-clock budget comes from the `X-Prox-Budget-Ms` header (server
//!   default otherwise); a mid-run budget trip returns `200` with the
//!   best-so-far summary and its `stop_reason`, only *upfront* exhaustion
//!   is `408`.
//! * `POST /provision` — the same fields plus a required `cancel`:
//!   `{"annotations": [names..]}` or `{"attributes": [[attr, value]..]}`;
//!   evaluates the assignment on both the original provenance and the
//!   summary (§7's provisioning view).
//! * `GET /datasets` — the preset catalog with titles.
//! * `GET /healthz`, `GET /metrics` — liveness and the prox-obs snapshot.
//!
//! ## Error → status mapping
//!
//! [`ErrorKind::Input`] → 400, [`ErrorKind::Budget`] → 408,
//! [`ErrorKind::Internal`] → 500; unknown path → 404, wrong method → 405;
//! a full admission queue is shed by the server with 503 + `Retry-After`.
//!
//! ## Cache keying
//!
//! [`canonical_key`] renders every result-determining parameter — dataset
//! generator config (including seed), selection, weights, bounds, `agg`,
//! `budget_steps` — as sorted JSON. Wall-clock budgets are deliberately
//! excluded: they do not change what a *completed* run returns, and runs
//! cut short by wall-clock (`deadline_exceeded`/`cancelled`) are never
//! cached. Identical seeded requests therefore produce byte-identical
//! bodies whether computed or served from cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use prox_datasets::{MovieLens, MovieLensConfig};
use prox_obs::{
    keep_sampled, trace_id_from, window, Counter, Json, RetainReason, RetainedTrace, TraceContext,
    TraceRing, PROMETHEUS_CONTENT_TYPE,
};
use prox_provenance::{AggKind, ProvExpr, ValuationClass};
use prox_robust::{CancelFlag, ErrorKind, ExecutionBudget, ProxError};
use prox_store::SegmentStore;
use prox_system::evaluator::{evaluate_both, Assignment, Evaluation};
use prox_system::selection::{select, Selection};
use prox_system::summarization::{summarize, SummarizationRequest, Summarized};

use prox_core::{ConstraintConfig, MergeRule, StopReason, SummarizeConfig, Summarizer};

use crate::breaker::{BreakerAdmission, BreakerConfig, CircuitBreaker};
use crate::cache::{fingerprint, SummaryCache};
use crate::health::{Health, HealthState};
use crate::http::{Request, Response};
use crate::lock;
use crate::ratelimit::{self, Admission, RateLimiter};

static REQUESTS: Counter = Counter::new("serve/requests");
static ERRORS: Counter = Counter::new("serve/errors");

/// Shared per-server state handed to every worker.
pub struct ServiceCtx {
    /// The response cache (LRU over canonical request keys).
    pub cache: Mutex<SummaryCache>,
    /// Wall-clock budget applied when no `X-Prox-Budget-Ms` is sent.
    pub default_budget_ms: u64,
    /// Cancelled on shutdown; every request budget carries a clone so
    /// in-flight runs degrade to best-so-far promptly.
    pub shutdown: CancelFlag,
    /// Process health (`healthy`/`degraded`/`draining`), fed by worker
    /// supervision and surfaced on `/healthz`.
    pub health: Health,
    /// Circuit breaker around the summarize path.
    pub breaker: CircuitBreaker,
    /// Per-tenant token buckets (`X-Prox-Tenant`).
    pub limiter: Mutex<RateLimiter>,
    /// Retained request traces, tail-sampled (`/debug/traces`).
    pub traces: TraceRing,
    /// Seed feeding both deterministic trace ids and the sampling hash.
    pub trace_seed: u64,
    /// Retention rate for *healthy* requests in `[0,1]`; errored,
    /// degraded, and slow requests are always retained.
    pub trace_sample_rate: f64,
    /// Slow-request threshold in milliseconds (`PROX_SLOW_MS`); `0`
    /// disables the slow classification and the slow-request log.
    pub slow_ms: u64,
    /// Optional segment store (`--store <dir>`): summaries on
    /// `/summarize/store` are served straight off its pages.
    pub store: Option<StoreState>,
    /// Process-local request sequence number (trace-id input).
    seq: AtomicU64,
}

/// An attached segment store and the directory it was opened from.
/// Reads mutate the page cache, so handlers lock the store per request.
pub struct StoreState {
    dir: String,
    store: Mutex<SegmentStore>,
}

impl StoreState {
    /// Open the store under `dir` with the default page-cache bounds.
    pub fn open(dir: &str) -> Result<StoreState, ProxError> {
        let store = SegmentStore::open(std::path::Path::new(dir))?;
        Ok(StoreState {
            dir: dir.to_owned(),
            store: Mutex::new(store),
        })
    }

    /// The directory the store was opened from.
    pub fn dir(&self) -> &str {
        &self.dir
    }
}

impl ServiceCtx {
    /// Fresh context with an empty cache and default trace settings
    /// (seed 0, retain every trace, ring of 128). The slow threshold
    /// comes from `PROX_SLOW_MS`.
    pub fn new(cache_capacity: usize, default_budget_ms: u64, shutdown: CancelFlag) -> Self {
        let deterministic = prox_obs::deterministic_mode();
        ServiceCtx {
            cache: Mutex::new(SummaryCache::new(cache_capacity)),
            default_budget_ms,
            shutdown,
            health: Health::new(),
            breaker: CircuitBreaker::new(BreakerConfig::default()),
            limiter: Mutex::new(RateLimiter::new(50.0, 20.0, deterministic)),
            traces: TraceRing::new(128),
            trace_seed: 0,
            trace_sample_rate: 1.0,
            slow_ms: slow_ms_from_env(),
            store: None,
            seq: AtomicU64::new(0),
        }
    }

    /// Attach an opened segment store (see [`StoreState::open`]); enables
    /// the `/summarize/store` and `/store/stats` endpoints.
    pub fn with_store(mut self, store: StoreState) -> Self {
        self.store = Some(store);
        self
    }

    /// Override the trace seed, healthy-request sample rate, and ring
    /// capacity (see [`crate::server::ServerConfig`]).
    pub fn with_trace_settings(mut self, seed: u64, sample_rate: f64, capacity: usize) -> Self {
        self.trace_seed = seed;
        self.trace_sample_rate = sample_rate;
        self.traces = TraceRing::new(capacity);
        self
    }

    /// Override the per-tenant bucket and circuit-breaker tunables (see
    /// [`crate::server::ServerConfig`]). The limiter's clock follows
    /// `PROX_DETERMINISTIC`.
    pub fn with_resilience(
        mut self,
        tenant_rate: f64,
        tenant_burst: f64,
        breaker: BreakerConfig,
    ) -> Self {
        let deterministic = prox_obs::deterministic_mode();
        self.limiter = Mutex::new(RateLimiter::new(tenant_rate, tenant_burst, deterministic));
        self.breaker = CircuitBreaker::new(breaker);
        self
    }
}

/// The slow-request threshold (`PROX_SLOW_MS`, milliseconds); unset,
/// empty, or unparseable means disabled.
fn slow_ms_from_env() -> u64 {
    std::env::var("PROX_SLOW_MS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// The built-in dataset catalog: `(name, generator config)`. `demo`
/// matches the CLI's default dataset.
pub fn presets() -> Vec<(&'static str, MovieLensConfig)> {
    vec![
        (
            "demo",
            MovieLensConfig {
                users: 40,
                movies: 8,
                ratings_per_user: 2,
                seed: 2016,
            },
        ),
        (
            "small",
            MovieLensConfig {
                users: 15,
                movies: 5,
                ratings_per_user: 2,
                seed: 3,
            },
        ),
        (
            "dense",
            MovieLensConfig {
                users: 40,
                movies: 8,
                ratings_per_user: 3,
                seed: 11,
            },
        ),
        (
            "wide",
            MovieLensConfig {
                users: 20,
                movies: 14,
                ratings_per_user: 3,
                seed: 11,
            },
        ),
    ]
}

/// A fully resolved `/summarize` or `/provision` request.
#[derive(Clone, Debug)]
pub struct Params {
    /// Generator config (from a preset or inline).
    pub dataset: MovieLensConfig,
    /// Catalog name, or `"custom"` for inline configs.
    pub dataset_name: String,
    /// What to select before summarizing.
    pub selection: Selection,
    /// Distance weight (`wDist`).
    pub w_dist: f64,
    /// Distance bound (`TARGET-DIST`).
    pub target_dist: f64,
    /// Size bound (`TARGET-SIZE`).
    pub target_size: usize,
    /// Maximum merge steps.
    pub steps: usize,
    /// Aggregation function.
    pub agg: AggKind,
    /// Optional deterministic budget step cap.
    pub budget_steps: Option<usize>,
    /// Provisioning assignment (`/provision` only).
    pub cancel: Option<Assignment>,
}

impl Default for Params {
    fn default() -> Self {
        let defaults = SummarizationRequest::default();
        Params {
            dataset: MovieLensConfig {
                users: 40,
                movies: 8,
                ratings_per_user: 2,
                seed: 2016,
            },
            dataset_name: "demo".to_owned(),
            selection: Selection::All,
            w_dist: defaults.w_dist,
            target_dist: defaults.target_dist,
            target_size: defaults.target_size,
            steps: defaults.steps,
            agg: defaults.aggregation,
            budget_steps: None,
            cancel: None,
        }
    }
}

fn bad(message: impl Into<String>) -> ProxError {
    ProxError::config(message)
}

fn f64_of(value: &Json, what: &str) -> Result<f64, ProxError> {
    match value {
        Json::Float(f) => Ok(*f),
        Json::UInt(u) => Ok(*u as f64),
        Json::Int(i) => Ok(*i as f64),
        other => Err(bad(format!("{what} must be a number, got {other:?}"))),
    }
}

fn usize_of(value: &Json, what: &str) -> Result<usize, ProxError> {
    value
        .as_u64()
        .map(|u| u as usize)
        .ok_or_else(|| bad(format!("{what} must be a non-negative integer")))
}

fn str_of<'a>(value: &'a Json, what: &str) -> Result<&'a str, ProxError> {
    value
        .as_str()
        .ok_or_else(|| bad(format!("{what} must be a string")))
}

fn agg_of(name: &str) -> Result<AggKind, ProxError> {
    match name {
        "MAX" => Ok(AggKind::Max),
        "MIN" => Ok(AggKind::Min),
        "SUM" => Ok(AggKind::Sum),
        "COUNT" => Ok(AggKind::Count),
        other => Err(bad(format!(
            "unknown agg {other:?} (expected MAX|MIN|SUM|COUNT)"
        ))),
    }
}

fn dataset_of(value: &Json) -> Result<(MovieLensConfig, String), ProxError> {
    if let Json::Str(name) = value {
        return presets()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(n, cfg)| (cfg, n.to_owned()))
            .ok_or_else(|| {
                bad(format!(
                    "unknown dataset preset {name:?} (see GET /datasets)"
                ))
            });
    }
    let entries = match value {
        Json::Obj(entries) => entries,
        other => {
            return Err(bad(format!(
                "dataset must be a preset name or an object, got {other:?}"
            )))
        }
    };
    let mut cfg = MovieLensConfig {
        users: 40,
        movies: 8,
        ratings_per_user: 2,
        seed: 2016,
    };
    for (key, v) in entries {
        match key.as_str() {
            "users" => cfg.users = usize_of(v, "dataset.users")?,
            "movies" => cfg.movies = usize_of(v, "dataset.movies")?,
            "ratings_per_user" => cfg.ratings_per_user = usize_of(v, "dataset.ratings_per_user")?,
            "seed" => {
                cfg.seed = v
                    .as_u64()
                    .ok_or_else(|| bad("dataset.seed must be a non-negative integer"))?
            }
            other => return Err(bad(format!("unknown dataset field {other:?}"))),
        }
    }
    // Sanity caps: the generator is synthetic and cheap, but a service
    // endpoint must bound the work a single request can demand.
    if cfg.users == 0 || cfg.users > 2_000 {
        return Err(bad("dataset.users must be in 1..=2000"));
    }
    if cfg.movies == 0 || cfg.movies > 500 {
        return Err(bad("dataset.movies must be in 1..=500"));
    }
    if cfg.ratings_per_user == 0 || cfg.ratings_per_user > 50 {
        return Err(bad("dataset.ratings_per_user must be in 1..=50"));
    }
    Ok((cfg, "custom".to_owned()))
}

fn selection_of(value: &Json) -> Result<Selection, ProxError> {
    let entries = match value {
        Json::Obj(entries) => entries,
        other => return Err(bad(format!("selection must be an object, got {other:?}"))),
    };
    let mut genre: Option<String> = None;
    let mut year: Option<i32> = None;
    let mut picked: Option<Selection> = None;
    let mut saw_genre_year = false;
    for (key, v) in entries {
        match key.as_str() {
            "all" => picked = Some(Selection::All),
            "search" => picked = Some(Selection::Search(str_of(v, "selection.search")?.to_owned())),
            "titles" => picked = Some(Selection::Titles(strings_of(v, "selection.titles")?)),
            "genre" => {
                genre = Some(str_of(v, "selection.genre")?.to_owned());
                saw_genre_year = true;
            }
            "year" => {
                let y = f64_of(v, "selection.year")?;
                year = Some(y as i32);
                saw_genre_year = true;
            }
            other => return Err(bad(format!("unknown selection field {other:?}"))),
        }
    }
    match (picked, saw_genre_year) {
        (Some(_), true) => Err(bad("selection mixes genre/year with another form")),
        (Some(selection), false) => Ok(selection),
        (None, true) => Ok(Selection::GenreYear { genre, year }),
        (None, false) => Err(bad("selection object is empty")),
    }
}

/// Parse a JSON array of strings, naming `ctx` in any error.
fn strings_of(value: &Json, ctx: &str) -> Result<Vec<String>, ProxError> {
    let items = match value {
        Json::Arr(items) => items,
        other => return Err(bad(format!("{ctx} must be an array, got {other:?}"))),
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        out.push(str_of(item, ctx)?.to_owned());
    }
    Ok(out)
}

fn cancel_of(value: &Json) -> Result<Assignment, ProxError> {
    let entries = match value {
        Json::Obj(entries) => entries,
        other => return Err(bad(format!("cancel must be an object, got {other:?}"))),
    };
    if entries.len() != 1 {
        return Err(bad(
            "cancel must have exactly one of annotations|attributes",
        ));
    }
    let (key, v) = &entries[0];
    match key.as_str() {
        "annotations" => Ok(Assignment::FalseAnnotations(strings_of(
            v,
            "cancel.annotations",
        )?)),
        "attributes" => {
            let items = match v {
                Json::Arr(items) => items,
                other => {
                    return Err(bad(format!(
                        "cancel.attributes must be an array, got {other:?}"
                    )))
                }
            };
            let mut pairs = Vec::with_capacity(items.len());
            for pair in items {
                let parts = match pair {
                    Json::Arr(parts) if parts.len() == 2 => parts,
                    other => {
                        return Err(bad(format!(
                            "cancel.attributes[] must be [attr, value] pairs, got {other:?}"
                        )))
                    }
                };
                pairs.push((
                    str_of(&parts[0], "cancel.attributes[].attr")?.to_owned(),
                    str_of(&parts[1], "cancel.attributes[].value")?.to_owned(),
                ));
            }
            Ok(Assignment::FalseAttributes(pairs))
        }
        other => Err(bad(format!("unknown cancel form {other:?}"))),
    }
}

/// Parse a request body into [`Params`]. An empty body means defaults;
/// unknown fields are rejected so typos surface as `400`s.
pub fn parse_params(body: &[u8]) -> Result<Params, ProxError> {
    let mut params = Params::default();
    let text = std::str::from_utf8(body)
        .map_err(|e| bad(format!("body is not UTF-8 at byte {}", e.valid_up_to())))?;
    if text.trim().is_empty() {
        return Ok(params);
    }
    let value = Json::parse(text).map_err(|e| bad(format!("body is not valid JSON: {e}")))?;
    let entries = match &value {
        Json::Obj(entries) => entries,
        other => return Err(bad(format!("body must be a JSON object, got {other:?}"))),
    };
    for (key, v) in entries {
        match key.as_str() {
            "dataset" => {
                let (cfg, name) = dataset_of(v)?;
                params.dataset = cfg;
                params.dataset_name = name;
            }
            "selection" => params.selection = selection_of(v)?,
            "w_dist" => params.w_dist = f64_of(v, "w_dist")?,
            "target_dist" => params.target_dist = f64_of(v, "target_dist")?,
            "target_size" => params.target_size = usize_of(v, "target_size")?,
            "steps" => params.steps = usize_of(v, "steps")?,
            "agg" => params.agg = agg_of(str_of(v, "agg")?)?,
            "budget_steps" => params.budget_steps = Some(usize_of(v, "budget_steps")?),
            "cancel" => params.cancel = Some(cancel_of(v)?),
            other => return Err(bad(format!("unknown field {other:?}"))),
        }
    }
    Ok(params)
}

fn selection_json(selection: &Selection) -> Json {
    match selection {
        Selection::All => Json::obj().with("all", true),
        Selection::Search(s) => Json::obj().with("search", s.as_str()),
        Selection::Titles(titles) => Json::obj().with(
            "titles",
            Json::Arr(titles.iter().map(|t| Json::from(t.as_str())).collect()),
        ),
        Selection::GenreYear { genre, year } => {
            let mut obj = Json::obj();
            if let Some(g) = genre {
                obj.set("genre", g.as_str());
            }
            if let Some(y) = year {
                obj.set("year", i64::from(*y));
            }
            obj
        }
    }
}

/// The canonical cache key: every result-determining parameter, sorted
/// and rendered. Wall-clock budgets are excluded by design (see module
/// docs).
pub fn canonical_key(params: &Params) -> String {
    Json::obj()
        .with(
            "dataset",
            Json::obj()
                .with("users", params.dataset.users)
                .with("movies", params.dataset.movies)
                .with("ratings_per_user", params.dataset.ratings_per_user)
                .with("seed", params.dataset.seed),
        )
        .with("selection", selection_json(&params.selection))
        .with("w_dist", params.w_dist)
        .with("target_dist", params.target_dist)
        .with("target_size", params.target_size)
        .with("steps", params.steps)
        .with("agg", params.agg.name())
        .with(
            "budget_steps",
            match params.budget_steps {
                Some(n) => Json::from(n),
                None => Json::Null,
            },
        )
        .sorted()
        .render()
}

/// Snake-case stop-reason names used in response bodies (and matching the
/// bench `run/stop/*` counter suffixes).
pub fn stop_reason_name(reason: StopReason) -> &'static str {
    reason.name()
}

/// Whether a result may be cached: runs cut short by wall-clock or
/// cancellation are not reproducible from the request alone.
fn cacheable(reason: StopReason) -> bool {
    !matches!(reason, StopReason::DeadlineExceeded | StopReason::Cancelled)
}

/// The typed 500 a supervised worker writes after catching a panicking
/// handler: the connection is still answered (never hung or reset), the
/// worker lives on, and the panic is visible in `serve/worker_panics`.
pub fn panic_response() -> Response {
    ERRORS.incr();
    Response::json(
        500,
        Json::obj()
            .with("error", "request handler panicked; worker recovered")
            .with("kind", "internal")
            .render(),
    )
}

/// Map a typed error onto the HTTP surface.
pub fn error_response(e: &ProxError) -> Response {
    ERRORS.incr();
    let status = match e.kind() {
        ErrorKind::Input => 400,
        ErrorKind::Budget => 408,
        ErrorKind::Internal => 500,
    };
    Response::json(
        status,
        Json::obj()
            .with("error", e.to_string())
            .with("kind", e.kind().to_string())
            .render(),
    )
}

fn budget_for(
    req: &Request,
    ctx: &ServiceCtx,
    params: &Params,
    trace: Option<&TraceContext>,
) -> Result<ExecutionBudget, ProxError> {
    let ms = match req.header("x-prox-budget-ms") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| bad(format!("X-Prox-Budget-Ms must be an integer, got {v:?}")))?,
        None => ctx.default_budget_ms,
    };
    let mut budget = ExecutionBudget::unlimited()
        .with_deadline_ms(ms)
        .with_cancel(ctx.shutdown.clone());
    if let Some(steps) = params.budget_steps {
        budget = budget.with_max_steps(steps);
    }
    // The trace rides the budget into the summarizer, HAC, and candidate
    // enumeration — it is not a limit (see `ExecutionBudget::with_trace`).
    if let Some(t) = trace {
        budget = budget.with_trace(t.clone());
    }
    Ok(budget)
}

fn run_summarize(
    params: &Params,
    budget: ExecutionBudget,
) -> Result<(MovieLens, Summarized), ProxError> {
    let mut data = MovieLens::generate(params.dataset);
    let selected = select(&mut data, &params.selection, params.agg);
    if selected.movies.is_empty() {
        return Err(bad("selection matched no movies"));
    }
    let request = SummarizationRequest {
        w_dist: params.w_dist,
        target_dist: params.target_dist,
        target_size: params.target_size,
        steps: params.steps,
        aggregation: params.agg,
        budget,
        ..SummarizationRequest::default()
    };
    let out = summarize(&mut data, &selected, request)?;
    Ok((data, out))
}

fn summary_json(fp: &str, params: &Params, data: &MovieLens, out: &Summarized) -> Json {
    let names: Vec<Json> = out
        .result
        .summary
        .annotations()
        .into_iter()
        .map(|a| Json::from(data.store.name(a)))
        .collect();
    Json::obj()
        .with("request_fingerprint", fp)
        .with("dataset", params.dataset_name.as_str())
        .with("stop_reason", stop_reason_name(out.result.stop_reason))
        .with("initial_size", out.result.initial_size)
        .with("final_size", out.result.final_size())
        .with("final_distance", out.result.final_distance)
        .with("steps", out.result.history.len())
        .with("summary", Json::Arr(names))
}

/// The `503` an open circuit breaker answers with.
fn breaker_shed_response(retry_after_secs: u64) -> Response {
    let mut resp = Response::json(
        503,
        Json::obj()
            .with("error", "summarize circuit breaker open")
            .with("kind", "overload")
            .render(),
    );
    resp.retry_after = Some(retry_after_secs);
    resp
}

fn summarize_route(
    req: &Request,
    ctx: &ServiceCtx,
    trace: Option<&TraceContext>,
) -> Result<Response, ProxError> {
    let params = parse_params(&req.body)?;
    // Circuit breaker: while open, shed fast — before budgets, cache
    // probes, or any summarization work is queued.
    if let BreakerAdmission::Shed { retry_after_secs } = ctx.breaker.admit() {
        if let Some(t) = trace {
            t.note("breaker", "shed");
        }
        return Ok(breaker_shed_response(retry_after_secs));
    }
    // Fault site: an armed `panic` clause unwinds from here through the
    // worker supervision boundary, which answers a typed 500.
    prox_robust::fault::maybe_panic();
    let budget = budget_for(req, ctx, &params, trace)?;
    let key = canonical_key(&params);
    if let Some(body) = lock(&ctx.cache).get(&key) {
        if let Some(t) = trace {
            t.note("cache", "hit");
        }
        ctx.breaker.record_success();
        return Ok(Response::json(200, body));
    }
    if let Some(t) = trace {
        t.note("cache", "miss");
    }
    let (data, out) = match run_summarize(&params, budget) {
        Ok(v) => v,
        Err(e) => {
            // Only internal faults feed the breaker: client errors (400)
            // and budget exhaustion (408) say nothing about path health.
            if e.kind() == ErrorKind::Internal {
                ctx.breaker.record_failure();
            }
            return Err(e);
        }
    };
    ctx.breaker.record_success();
    let body = summary_json(&fingerprint(&key), &params, &data, &out).render();
    if cacheable(out.result.stop_reason) {
        lock(&ctx.cache).put(key, body.clone());
    }
    Ok(Response::json(200, body))
}

fn rows_json(eval: &Evaluation) -> Json {
    // `eval_time_ns` is wall-clock and deliberately omitted: response
    // bodies must be byte-stable for identical seeded requests (rule L2).
    Json::Arr(
        eval.rows
            .iter()
            .map(|r| {
                Json::obj()
                    .with("title", r.title.as_str())
                    .with("aggregated", r.aggregated)
            })
            .collect(),
    )
}

fn provision_route(
    req: &Request,
    ctx: &ServiceCtx,
    trace: Option<&TraceContext>,
) -> Result<Response, ProxError> {
    let params = parse_params(&req.body)?;
    let assignment = params
        .cancel
        .clone()
        .ok_or_else(|| bad("/provision requires a cancel field"))?;
    let budget = budget_for(req, ctx, &params, trace)?;
    let key = canonical_key(&params);
    let (data, out) = run_summarize(&params, budget)?;
    let (orig, summ) = evaluate_both(&out.original, &out.result.summary, &assignment, &data.store);
    let body = Json::obj()
        .with("request_fingerprint", fingerprint(&key).as_str())
        .with("stop_reason", stop_reason_name(out.result.stop_reason))
        .with("original", rows_json(&orig))
        .with("summary", rows_json(&summ))
        .render();
    Ok(Response::json(200, body))
}

/// Parameters for `/summarize/store`: a selection size over the store's
/// object order plus the usual summarization knobs.
struct StoreParams {
    objects: usize,
    w_dist: f64,
    target_dist: f64,
    target_size: usize,
    steps: usize,
    budget_steps: Option<usize>,
}

impl Default for StoreParams {
    fn default() -> Self {
        let defaults = SummarizationRequest::default();
        StoreParams {
            objects: 4,
            w_dist: defaults.w_dist,
            target_dist: defaults.target_dist,
            target_size: defaults.target_size,
            steps: defaults.steps,
            budget_steps: None,
        }
    }
}

fn parse_store_params(body: &[u8]) -> Result<StoreParams, ProxError> {
    let mut params = StoreParams::default();
    let text = std::str::from_utf8(body)
        .map_err(|e| bad(format!("body is not UTF-8 at byte {}", e.valid_up_to())))?;
    if text.trim().is_empty() {
        return Ok(params);
    }
    let value = Json::parse(text).map_err(|e| bad(format!("body is not valid JSON: {e}")))?;
    let entries = match &value {
        Json::Obj(entries) => entries,
        other => return Err(bad(format!("body must be a JSON object, got {other:?}"))),
    };
    for (key, v) in entries {
        match key.as_str() {
            "objects" => params.objects = usize_of(v, "objects")?,
            "w_dist" => params.w_dist = f64_of(v, "w_dist")?,
            "target_dist" => params.target_dist = f64_of(v, "target_dist")?,
            "target_size" => params.target_size = usize_of(v, "target_size")?,
            "steps" => params.steps = usize_of(v, "steps")?,
            "budget_steps" => params.budget_steps = Some(usize_of(v, "budget_steps")?),
            other => return Err(bad(format!("unknown field {other:?}"))),
        }
    }
    if params.objects == 0 {
        return Err(bad("objects must be at least 1"));
    }
    Ok(params)
}

/// Cache key for store summaries: the store directory is part of the key
/// so restarting against a different store never replays stale bodies.
fn store_key(params: &StoreParams, dir: &str) -> String {
    Json::obj()
        .with("store_dir", dir)
        .with("objects", params.objects)
        .with("w_dist", params.w_dist)
        .with("target_dist", params.target_dist)
        .with("target_size", params.target_size)
        .with("steps", params.steps)
        .with(
            "budget_steps",
            match params.budget_steps {
                Some(n) => Json::from(n),
                None => Json::Null,
            },
        )
        .sorted()
        .render()
}

/// `POST /summarize/store`: fold the attached segment store through its
/// page cache under the request budget and summarize a selection of it.
/// The anytime contract holds end to end — a budget trip mid-fold
/// surfaces as a `200` over the partial fold with `fold.stopped: true`.
fn store_summarize_route(
    req: &Request,
    ctx: &ServiceCtx,
    trace: Option<&TraceContext>,
) -> Result<Response, ProxError> {
    let Some(state) = &ctx.store else {
        return Err(bad("no segment store attached — start with --store <dir>"));
    };
    let params = parse_store_params(&req.body)?;
    let budget_params = Params {
        budget_steps: params.budget_steps,
        ..Params::default()
    };
    let budget = budget_for(req, ctx, &budget_params, trace)?;
    let key = store_key(&params, state.dir());
    if let Some(body) = lock(&ctx.cache).get(&key) {
        if let Some(t) = trace {
            t.note("cache", "hit");
        }
        return Ok(Response::json(200, body));
    }
    if let Some(t) = trace {
        t.note("cache", "miss");
    }
    // The store guard is scoped to the fold and dropped before the
    // response cache is touched again: cache and store locks are never
    // held together, in either order.
    let mut session = budget.start();
    let (expr, outcome, mut anns) = {
        let mut store = lock(&state.store);
        let (expr, outcome) = store.collect(&mut session)?;
        let anns = store.anns().clone();
        (expr, outcome, anns)
    };

    let mut selection = ProvExpr::new(expr.kind());
    for (object, agg) in expr.entries().iter().take(params.objects) {
        // Anytime contract: keep polling, but a trip here does not void
        // the partial fold — the selection is a bounded slice of it.
        let _ = session.note_step();
        for tensor in agg.tensors() {
            selection.push(*object, tensor.clone());
        }
    }
    let mut domains = Vec::new();
    for (_, ann) in anns.iter() {
        if !domains.contains(&ann.domain) {
            domains.push(ann.domain);
        }
    }
    let mut constraints = ConstraintConfig::new();
    for &d in &domains {
        constraints = constraints.allow(d, MergeRule::SharedAttribute { attrs: vec![] });
    }
    let valuations =
        ValuationClass::CancelSingleAttribute.generate(&anns, &selection.annotations(), &domains);
    let config = SummarizeConfig {
        w_dist: params.w_dist,
        w_size: 1.0 - params.w_dist,
        target_dist: params.target_dist,
        target_size: params.target_size,
        max_steps: params.steps,
        budget,
        ..SummarizeConfig::default()
    };
    let result =
        Summarizer::new(&mut anns, constraints, config).summarize(&selection, &valuations)?;

    let names: Vec<Json> = result
        .summary
        .annotations()
        .into_iter()
        .map(|a| Json::from(anns.name(a)))
        .collect();
    let body = Json::obj()
        .with("request_fingerprint", fingerprint(&key).as_str())
        .with(
            "fold",
            Json::obj()
                .with("logical_seen", outcome.logical_seen)
                .with("records_seen", outcome.records_seen)
                .with("stopped", outcome.stopped.is_some())
                .with("objects", expr.num_objects())
                .with("tensors", expr.size()),
        )
        .with("selected_objects", params.objects)
        .with("stop_reason", stop_reason_name(result.stop_reason))
        .with("initial_size", result.initial_size)
        .with("final_size", result.final_size())
        .with("final_distance", result.final_distance)
        .with("steps", result.history.len())
        .with("summary", Json::Arr(names))
        .render();
    // A fold cut short by wall-clock is not reproducible from the
    // request alone; only complete folds with cacheable summaries land
    // in the response cache.
    if outcome.stopped.is_none() && cacheable(result.stop_reason) {
        lock(&ctx.cache).put(key, body.clone());
    }
    Ok(Response::json(200, body))
}

/// `GET /store/stats`: the attached store's reader statistics (segment
/// counts, dedup ratio, page-cache hit rate) — the data behind the
/// `prox stats` store section.
fn store_stats_response(ctx: &ServiceCtx) -> Response {
    match &ctx.store {
        Some(state) => Response::json(200, lock(&state.store).stats_json().sorted().render()),
        None => Response::json(
            404,
            Json::obj()
                .with(
                    "error",
                    "no segment store attached — start with --store <dir>",
                )
                .render(),
        ),
    }
}

fn datasets_response() -> Response {
    let mut items = Vec::new();
    for (name, cfg) in presets() {
        let data = MovieLens::generate(cfg);
        let titles: Vec<Json> = data
            .movies
            .iter()
            .map(|&m| Json::from(data.store.name(m)))
            .collect();
        items.push(
            Json::obj()
                .with("name", name)
                .with("users", cfg.users)
                .with("movies", cfg.movies)
                .with("ratings_per_user", cfg.ratings_per_user)
                .with("seed", cfg.seed)
                .with("titles", Json::Arr(titles)),
        );
    }
    Response::json(200, Json::obj().with("datasets", Json::Arr(items)).render())
}

/// Dispatch one parsed request (untraced; see [`respond`] for the worker
/// loop's traced entry point).
pub fn route(req: &Request, ctx: &ServiceCtx) -> Response {
    route_traced(req, ctx, None)
}

/// The resilience snapshot served on `/metrics.json` and rendered by
/// `prox stats`: health state, breaker state, panic/denial counters, and
/// the per-tenant 429 tally.
pub fn resilience_json(ctx: &ServiceCtx) -> Json {
    let mut tenants = Json::obj();
    for (tenant, denied) in ratelimit::tenant_denials() {
        tenants.set(tenant.as_str(), denied);
    }
    Json::obj()
        .with("health", ctx.health.state().name())
        .with("breaker", ctx.breaker.state().name())
        .with(
            "worker_panics",
            prox_obs::counter_value("serve/worker_panics").unwrap_or(0),
        )
        .with(
            "rate_limited",
            prox_obs::counter_value("serve/rate_limited").unwrap_or(0),
        )
        .with("tenant_429", tenants)
}

/// Gate a tenant-labelled mutation through the token-bucket limiter;
/// `Some` is the finished `429` + `Retry-After` response.
fn tenant_gate(req: &Request, ctx: &ServiceCtx, trace: Option<&TraceContext>) -> Option<Response> {
    let tenant = req.header("x-prox-tenant")?;
    match lock(&ctx.limiter).admit(tenant) {
        Admission::Admit => None,
        Admission::Deny { retry_after_secs } => {
            if let Some(t) = trace {
                t.note("rate_limited", tenant);
            }
            let mut resp = Response::json(
                429,
                Json::obj()
                    .with("error", format!("tenant {tenant:?} rate limited"))
                    .with("kind", "rate_limited")
                    .render(),
            );
            resp.retry_after = Some(retry_after_secs);
            Some(resp)
        }
    }
}

fn route_traced(req: &Request, ctx: &ServiceCtx, trace: Option<&TraceContext>) -> Response {
    REQUESTS.incr();
    // Per-tenant admission runs before any handler work: a hot tenant is
    // answered 429 on the spot, without touching budgets or the cache.
    if matches!(
        (req.method.as_str(), req.path.as_str()),
        ("POST", "/summarize") | ("POST", "/provision") | ("POST", "/summarize/store")
    ) {
        if let Some(denied) = tenant_gate(req, ctx, trace) {
            return denied;
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let state = ctx.health.state();
            let body = Json::obj()
                .with(
                    "status",
                    if state == HealthState::Draining {
                        "draining"
                    } else {
                        "ok"
                    },
                )
                .with("state", state.name())
                .render();
            if state == HealthState::Draining {
                // Load balancers must stop routing to a dying process.
                let mut resp = Response::json(503, body);
                resp.retry_after = Some(1);
                resp
            } else {
                Response::json(200, body)
            }
        }
        // Prometheus text exposition; the JSON snapshot moved to
        // `/metrics.json`. Deterministic mode omits wall-clock series.
        ("GET", "/metrics") => Response::text(
            200,
            PROMETHEUS_CONTENT_TYPE,
            prox_obs::render_prometheus(prox_obs::deterministic_mode()),
        ),
        ("GET", "/metrics.json") => Response::json(
            200,
            prox_obs::snapshot()
                .with(
                    "window",
                    window::window_json(prox_obs::deterministic_mode()),
                )
                .with(
                    "memory",
                    prox_obs::alloc::memory_json(prox_obs::deterministic_mode()),
                )
                .with("resilience", resilience_json(ctx))
                .sorted()
                .render(),
        ),
        ("GET", "/datasets") => datasets_response(),
        ("GET", "/debug/traces") => Response::json(200, ctx.traces.list_json().render()),
        ("POST", "/summarize") => {
            summarize_route(req, ctx, trace).unwrap_or_else(|e| error_response(&e))
        }
        ("POST", "/provision") => {
            provision_route(req, ctx, trace).unwrap_or_else(|e| error_response(&e))
        }
        ("POST", "/summarize/store") => {
            store_summarize_route(req, ctx, trace).unwrap_or_else(|e| error_response(&e))
        }
        ("GET", "/store/stats") => store_stats_response(ctx),
        ("GET", path) if path.starts_with("/debug/traces/") => {
            let id = &path["/debug/traces/".len()..];
            match ctx.traces.get_json(id) {
                Some(tree) => Response::json(200, tree.render()),
                None => Response::json(
                    404,
                    Json::obj()
                        .with("error", format!("no retained trace {id:?}"))
                        .render(),
                ),
            }
        }
        (
            _,
            "/healthz" | "/metrics" | "/metrics.json" | "/datasets" | "/summarize" | "/provision"
            | "/summarize/store" | "/store/stats" | "/debug/traces",
        ) => Response::json(
            405,
            Json::obj()
                .with("error", format!("method {} not allowed here", req.method))
                .render(),
        ),
        (_, path) => Response::json(
            404,
            Json::obj()
                .with("error", format!("no such path {path:?}"))
                .render(),
        ),
    }
}

/// Handle one connection's parse result end to end. While observability
/// is enabled this creates the request's [`TraceContext`] (root span
/// `"request"`), routes, classifies the finished request for
/// tail-sampling (error > degraded > slow > sampled), records it in the
/// sliding window, logs slow requests to the JSONL sink, and stamps
/// `X-Prox-Trace-Id` on the response. Disabled cost is one relaxed
/// atomic load (the workspace cost model).
pub fn respond(parsed: Result<Request, ProxError>, ctx: &ServiceCtx) -> Response {
    if !prox_obs::enabled() {
        return match &parsed {
            Ok(req) => route_traced(req, ctx, None),
            Err(e) => error_response(e),
        };
    }
    let seq = ctx.seq.fetch_add(1, Ordering::Relaxed);
    let trace = TraceContext::new(trace_id_from(ctx.trace_seed, seq));
    let endpoint = match &parsed {
        // Query strings never reach routing decisions, so strip them from
        // the metrics endpoint label to bound cardinality.
        Ok(req) => req
            .path
            .split('?')
            .next()
            .unwrap_or(req.path.as_str())
            .to_owned(),
        Err(_) => "<unparsed>".to_owned(),
    };
    let t0 = Instant::now();
    let response = {
        let root = trace.span("request");
        trace.note("endpoint", endpoint.as_str());
        if let Ok(req) = &parsed {
            trace.note("method", req.method.as_str());
        }
        let response = match &parsed {
            Ok(req) => route_traced(req, ctx, Some(&trace)),
            Err(e) => error_response(e),
        };
        trace.note("status", u64::from(response.status));
        drop(root);
        response
    };
    let dur_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);

    let stop = trace.find_attr("stop_reason");
    let degraded = matches!(
        stop.as_ref().and_then(Json::as_str),
        Some("deadline_exceeded" | "budget_exhausted" | "cancelled")
    );
    let cache = trace.find_attr("cache");
    window::record_request(&window::RequestObservation {
        endpoint: &endpoint,
        status: response.status,
        dur_us,
        degraded,
        cache: cache.as_ref().and_then(Json::as_str).map(|v| v == "hit"),
    });

    let slow = ctx.slow_ms > 0 && dur_us >= ctx.slow_ms.saturating_mul(1_000);
    if slow {
        prox_obs::emit_event(
            Json::obj()
                .with("type", "slow_request")
                .with("endpoint", endpoint.as_str())
                .with("dur_us", dur_us)
                .with("trace", trace.to_json()),
        );
    }
    let reason = if response.status >= 400 {
        Some(RetainReason::Error)
    } else if degraded {
        Some(RetainReason::Degraded)
    } else if slow {
        Some(RetainReason::Slow)
    } else if keep_sampled(ctx.trace_seed, trace.trace_id(), ctx.trace_sample_rate) {
        Some(RetainReason::Sampled)
    } else {
        None
    };
    let id_hex = trace.id_hex();
    if let Some(reason) = reason {
        ctx.traces.push(RetainedTrace {
            trace_id: id_hex.clone(),
            endpoint,
            status: response.status,
            dur_us,
            reason,
            tree: trace.to_json(),
        });
    }
    response.with_header("X-Prox-Trace-Id", id_hex)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn ctx() -> ServiceCtx {
        ServiceCtx::new(8, 5_000, CancelFlag::new())
    }

    #[test]
    fn defaults_parse_from_empty_body() {
        let p = parse_params(b"").unwrap();
        assert_eq!(p.dataset_name, "demo");
        assert_eq!(p.steps, 10);
        assert!(matches!(p.selection, Selection::All));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        assert!(parse_params(br#"{"wdist": 0.5}"#).is_err());
        assert!(parse_params(br#"{"dataset": {"zap": 1}}"#).is_err());
        assert!(parse_params(br#"{"selection": {"nope": 1}}"#).is_err());
    }

    #[test]
    fn dataset_caps_are_enforced() {
        assert!(parse_params(br#"{"dataset": {"users": 0}}"#).is_err());
        assert!(parse_params(br#"{"dataset": {"users": 100000}}"#).is_err());
        assert!(parse_params(br#"{"dataset": "nope"}"#).is_err());
        let p = parse_params(br#"{"dataset": "small"}"#).unwrap();
        assert_eq!(p.dataset.users, 15);
        assert_eq!(p.dataset_name, "small");
    }

    #[test]
    fn selection_forms_parse() {
        let p = parse_params(br#"{"selection": {"search": "the"}}"#).unwrap();
        assert!(matches!(p.selection, Selection::Search(_)));
        let p = parse_params(br#"{"selection": {"genre": "Drama", "year": 1995}}"#).unwrap();
        assert!(matches!(p.selection, Selection::GenreYear { .. }));
        let p = parse_params(br#"{"selection": {"titles": ["Sleepover"]}}"#).unwrap();
        assert!(matches!(p.selection, Selection::Titles(_)));
        assert!(parse_params(br#"{"selection": {"all": true, "year": 1}}"#).is_err());
        assert!(parse_params(br#"{"selection": {}}"#).is_err());
    }

    #[test]
    fn canonical_key_ignores_field_order_and_separates_requests() {
        let a = parse_params(br#"{"w_dist": 0.7, "steps": 8}"#).unwrap();
        let b = parse_params(br#"{"steps": 8, "w_dist": 0.7}"#).unwrap();
        assert_eq!(canonical_key(&a), canonical_key(&b));
        let c = parse_params(br#"{"w_dist": 0.7, "steps": 9}"#).unwrap();
        assert_ne!(canonical_key(&a), canonical_key(&c));
    }

    #[test]
    fn summarize_route_is_deterministic_and_cached() {
        let ctx = ctx();
        let req = post("/summarize", r#"{"steps": 4}"#);
        let first = route(&req, &ctx);
        assert_eq!(first.status, 200, "{}", first.body);
        let second = route(&req, &ctx);
        assert_eq!(first.body, second.body, "cache hit must be byte-identical");
        assert_eq!(lock(&ctx.cache).len(), 1);
    }

    #[test]
    fn malformed_body_is_a_400() {
        let resp = route(&post("/summarize", "{nope"), &ctx());
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"kind\""));
    }

    #[test]
    fn invalid_wdist_is_a_400() {
        let resp = route(&post("/summarize", r#"{"w_dist": 1.5}"#), &ctx());
        assert_eq!(resp.status, 400, "{}", resp.body);
    }

    #[test]
    fn deterministic_step_budget_degrades_to_200() {
        let resp = route(
            &post("/summarize", r#"{"budget_steps": 2, "steps": 8}"#),
            &ctx(),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = Json::parse(&resp.body).unwrap();
        assert_eq!(
            body.get("stop_reason").and_then(Json::as_str),
            Some("budget_exhausted")
        );
    }

    #[test]
    fn upfront_exhausted_budget_is_a_408() {
        let mut req = post("/summarize", "");
        req.headers.push(("x-prox-budget-ms".into(), "0".into()));
        let resp = route(&req, &ctx());
        assert_eq!(resp.status, 408, "{}", resp.body);
    }

    #[test]
    fn provision_requires_cancel_and_reports_both_tables() {
        let ctx = ctx();
        let resp = route(&post("/provision", "{}"), &ctx);
        assert_eq!(resp.status, 400);
        let resp = route(
            &post(
                "/provision",
                r#"{"cancel": {"attributes": [["gender", "M"]]}}"#,
            ),
            &ctx,
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = Json::parse(&resp.body).unwrap();
        assert!(matches!(body.get("original"), Some(Json::Arr(_))));
        assert!(matches!(body.get("summary"), Some(Json::Arr(_))));
        assert!(
            body.get("eval_time_ns").is_none(),
            "wall-clock must not leak"
        );
    }

    #[test]
    fn routing_covers_known_paths_and_methods() {
        let ctx = ctx();
        let get = |path: &str| Request {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(route(&get("/healthz"), &ctx).status, 200);
        assert_eq!(route(&get("/datasets"), &ctx).status, 200);
        assert_eq!(route(&get("/summarize"), &ctx).status, 405);
        assert_eq!(route(&get("/nope"), &ctx).status, 404);
        let datasets = Json::parse(&route(&get("/datasets"), &ctx).body).unwrap();
        let items = match datasets.get("datasets") {
            Some(Json::Arr(items)) => items,
            other => panic!("datasets not an array: {other:?}"),
        };
        assert_eq!(items.len(), presets().len());
        assert!(matches!(items[0].get("titles"), Some(Json::Arr(_))));
    }
}
