//! Minimal async-signal-safe shutdown flag.
//!
//! `SIGINT`/`SIGTERM` handlers may only touch lock-free state; the handler
//! here does a single atomic store into a process-global flag which the
//! server's accept loop polls. Registration goes through libc's `signal(2)`
//! directly — std already links libc, so this adds no dependency — and is
//! a no-op on non-unix targets.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Has a termination signal been observed since the last [`reset`]?
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Clear the flag (tests; or restarting a server in-process).
pub fn reset() {
    SIGNALLED.store(false, Ordering::SeqCst);
}

/// Trip the flag as if a signal had arrived (tests; in-process shutdown).
pub fn raise() {
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod sys {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::SIGNALLED.store(true, super::Ordering::SeqCst);
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        // SAFETY: the handler only performs an atomic store, which is
        // async-signal-safe; `signal` itself is safe to call with a valid
        // function pointer for these two standard signal numbers.
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Route `SIGINT`/`SIGTERM` into [`signalled`] (no-op off unix).
pub fn install_signal_handlers() {
    #[cfg(unix)]
    sys::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_reset_round_trip() {
        reset();
        assert!(!signalled());
        raise();
        assert!(signalled());
        reset();
        assert!(!signalled());
    }
}
