//! Cache observability: hit/miss/evict counters in the prox-obs registry.
//!
//! Lives in its own integration-test binary because the registry is
//! process-global: counter-delta assertions must not race requests made
//! by unrelated tests in the same process.

use prox_obs::Json;
use prox_serve::http::client_request;
use prox_serve::{Server, ServerConfig};

fn counter(name: &str) -> u64 {
    prox_obs::counter_value(name).unwrap_or(0)
}

#[test]
fn cache_hits_misses_and_evictions_are_counted() {
    // Counters are a no-op while the registry is disabled.
    prox_obs::set_enabled(true);
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 2,
        default_budget_ms: 10_000,
        io_deadline_ms: 10_000,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr().to_string();
    let post = |body: &str| {
        client_request(&addr, "POST", "/summarize", &[], body.as_bytes(), 30_000)
            .expect("request completes")
    };

    let (miss0, hit0, evict0) = (
        counter("serve/cache_miss"),
        counter("serve/cache_hit"),
        counter("serve/cache_evict"),
    );

    let body = r#"{"dataset": "small", "steps": 3}"#;
    let (s1, b1) = post(body);
    assert_eq!(s1, 200, "{b1}");
    assert_eq!(
        counter("serve/cache_miss"),
        miss0 + 1,
        "first request misses"
    );
    assert_eq!(counter("serve/cache_hit"), hit0);

    let (s2, b2) = post(body);
    assert_eq!(s2, 200);
    assert_eq!(b1, b2, "hit must be byte-identical");
    assert_eq!(counter("serve/cache_hit"), hit0 + 1, "second request hits");
    assert_eq!(counter("serve/cache_miss"), miss0 + 1);

    // Two more distinct requests overflow the capacity-2 cache.
    let (s3, _) = post(r#"{"dataset": "small", "steps": 2}"#);
    let (s4, _) = post(r#"{"dataset": "small", "steps": 1}"#);
    assert_eq!((s3, s4), (200, 200));
    assert_eq!(
        counter("serve/cache_evict"),
        evict0 + 1,
        "LRU entry evicted"
    );

    // The JSON snapshot endpoint exposes the same counters; the
    // Prometheus exposition carries them as labelled series.
    let (status, body) =
        client_request(&addr, "GET", "/metrics.json", &[], b"", 10_000).expect("metrics.json");
    assert_eq!(status, 200);
    let snap = Json::parse(&body).expect("metrics.json is JSON");
    assert!(
        snap.get("counters")
            .and_then(|c| c.get("serve/cache_hit"))
            .and_then(Json::as_u64)
            .is_some(),
        "serve counters missing from /metrics.json: {body}"
    );
    let (status, body) =
        client_request(&addr, "GET", "/metrics", &[], b"", 10_000).expect("metrics");
    assert_eq!(status, 200);
    assert!(
        body.contains("prox_counter_total{name=\"serve/cache_hit\"}"),
        "cache-hit series missing from Prometheus exposition: {body}"
    );
    handle.shutdown();
}
