//! End-to-end tests over a real socket: a server on an ephemeral port,
//! exercised through the blocking HTTP client in `prox_serve::http`.

// Harness helpers outside #[test] fns still panic on broken setup.
#![allow(clippy::expect_used)]

use std::net::TcpStream;
use std::time::{Duration, Instant};

use prox_obs::Json;
use prox_serve::http::client_request;
use prox_serve::{Server, ServerConfig, ServerHandle};

fn start(workers: usize, queue: usize) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_capacity: queue,
        cache_capacity: 16,
        default_budget_ms: 10_000,
        io_deadline_ms: 30_000,
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    client_request(addr, "POST", path, &[], body.as_bytes(), 30_000).expect("request completes")
}

fn get(addr: &str, path: &str) -> (u16, String) {
    client_request(addr, "GET", path, &[], b"", 30_000).expect("request completes")
}

#[test]
fn health_datasets_and_metrics_respond() {
    let handle = start(2, 8);
    let addr = handle.addr().to_string();
    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(
        Json::parse(&body)
            .expect("healthz is JSON")
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );
    let (status, body) = get(&addr, "/datasets");
    assert_eq!(status, 200);
    let datasets = Json::parse(&body).expect("datasets is JSON");
    let items = match datasets.get("datasets") {
        Some(Json::Arr(items)) => items,
        other => panic!("datasets not an array: {other:?}"),
    };
    assert!(items
        .iter()
        .any(|d| d.get("name").and_then(Json::as_str) == Some("demo")));
    let (status, body) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        body.lines().any(|l| l.starts_with("# TYPE ")),
        "metrics must be Prometheus text: {body}"
    );
    let (status, body) = get(&addr, "/metrics.json");
    assert_eq!(status, 200);
    let snap = Json::parse(&body).expect("metrics.json is JSON");
    assert!(
        snap.get("window").is_some(),
        "window section missing: {body}"
    );
    handle.shutdown();
}

#[test]
fn identical_seeded_requests_are_byte_identical() {
    let handle = start(2, 8);
    let addr = handle.addr().to_string();
    let body = r#"{"dataset": "small", "steps": 3}"#;
    let (s1, b1) = post(&addr, "/summarize", body);
    let (s2, b2) = post(&addr, "/summarize", body);
    assert_eq!((s1, s2), (200, 200), "{b1}");
    assert_eq!(b1, b2, "cache hit must be byte-identical to the recompute");
    let parsed = Json::parse(&b1).expect("summary is JSON");
    for key in [
        "request_fingerprint",
        "stop_reason",
        "initial_size",
        "final_size",
        "summary",
    ] {
        assert!(parsed.get(key).is_some(), "missing {key} in {b1}");
    }
    handle.shutdown();
}

#[test]
fn malformed_body_is_a_400() {
    let handle = start(1, 4);
    let addr = handle.addr().to_string();
    let (status, body) = post(&addr, "/summarize", "{not json");
    assert_eq!(status, 400, "{body}");
    let parsed = Json::parse(&body).expect("error body is JSON");
    assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("input"));
    handle.shutdown();
}

#[test]
fn deterministic_budget_degrades_to_200_with_stop_reason() {
    let handle = start(1, 4);
    let addr = handle.addr().to_string();
    let (status, body) = post(&addr, "/summarize", r#"{"budget_steps": 2, "steps": 8}"#);
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).expect("degraded result is JSON");
    assert_eq!(
        parsed.get("stop_reason").and_then(Json::as_str),
        Some("budget_exhausted"),
        "mid-run budget exhaustion must return the best-so-far summary"
    );
    handle.shutdown();
}

#[test]
fn upfront_exhausted_budget_is_a_408() {
    let handle = start(1, 4);
    let addr = handle.addr().to_string();
    let (status, body) = client_request(
        &addr,
        "POST",
        "/summarize",
        &[("X-Prox-Budget-Ms", "0".to_owned())],
        b"",
        30_000,
    )
    .expect("request completes");
    assert_eq!(status, 408, "{body}");
    let parsed = Json::parse(&body).expect("error body is JSON");
    assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("budget"));
    handle.shutdown();
}

#[test]
fn unknown_paths_and_methods_are_mapped() {
    let handle = start(1, 4);
    let addr = handle.addr().to_string();
    assert_eq!(get(&addr, "/nope").0, 404);
    assert_eq!(get(&addr, "/summarize").0, 405);
    handle.shutdown();
}

#[test]
fn provision_reports_original_and_summary_tables() {
    let handle = start(2, 8);
    let addr = handle.addr().to_string();
    let (status, body) = post(
        &addr,
        "/provision",
        r#"{"dataset": "small", "steps": 3, "cancel": {"attributes": [["gender", "M"]]}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).expect("provision result is JSON");
    let originals = match parsed.get("original") {
        Some(Json::Arr(rows)) => rows,
        other => panic!("original not an array: {other:?}"),
    };
    assert!(!originals.is_empty());
    assert!(originals[0].get("title").is_some());
    assert!(originals[0].get("aggregated").is_some());
    assert!(matches!(parsed.get("summary"), Some(Json::Arr(_))));
    handle.shutdown();
}

/// With one worker pinned by an idle connection and a one-slot queue
/// occupied by a second, a third connection must be shed with `503` +
/// `Retry-After` — and graceful shutdown must still complete promptly
/// because read sessions are cancel-linked.
#[test]
fn full_queue_sheds_503_and_shutdown_stays_prompt() {
    let handle = start(1, 1);
    let addr = handle.addr().to_string();

    // Occupies the single worker (connected, never sends a request). The
    // sleep gives the worker time to pop it so the next connection lands
    // in the queue rather than racing the pop.
    let idle_worker = TcpStream::connect(&addr).expect("connect");
    std::thread::sleep(Duration::from_millis(300));
    // Occupies the single queue slot.
    let idle_queued = TcpStream::connect(&addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.queue_len() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.queue_len(), 1, "second connection should be queued");

    // Shed path: a raw socket so the Retry-After header is visible. The
    // server sheds at accept time, so nothing needs to be written (writing
    // a request the server never reads would turn the close into a TCP
    // reset and race the response read).
    let mut shed = TcpStream::connect(&addr).expect("connect");
    let mut raw = String::new();
    std::io::Read::read_to_string(&mut shed, &mut raw).expect("read shed response");
    assert!(raw.starts_with("HTTP/1.1 503 "), "expected 503, got: {raw}");
    assert!(raw.contains("Retry-After: 1"), "missing Retry-After: {raw}");
    assert!(raw.contains("admission queue full"), "{raw}");

    let started = Instant::now();
    handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown must drain promptly, took {:?}",
        started.elapsed()
    );
    drop(idle_worker);
    drop(idle_queued);
}
