//! Fault injection against the server's I/O path: a `corrupt` fault
//! mangles request bodies as they are read (the same hook `PROX_FAULT`
//! drives from the environment), and the server must answer `400` —
//! never panic — and stay healthy afterwards.
//!
//! Own test binary: the fault plan is process-global, so this must not
//! share a process with tests sending well-formed bodies.

use prox_obs::Json;
use prox_robust::FaultGuard;
use prox_serve::http::client_request;
use prox_serve::{Server, ServerConfig};

#[test]
fn corrupt_fault_on_request_bytes_is_a_400_not_a_panic() {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 8,
        default_budget_ms: 10_000,
        io_deadline_ms: 10_000,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    {
        // Flip every body byte: the request cannot parse, deterministically.
        let _g = FaultGuard::install("corrupt@1:42").expect("valid spec");
        let (status, body) = client_request(
            &addr,
            "POST",
            "/summarize",
            &[],
            br#"{"dataset": "small", "steps": 3}"#,
            30_000,
        )
        .expect("server answers instead of crashing");
        assert_eq!(status, 400, "corrupted body must be rejected: {body}");
        let parsed = Json::parse(&body).expect("error body is JSON");
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("input"));
    }

    // Harness restored: the same request now succeeds and the server is
    // still fully operational.
    let (status, body) = client_request(
        &addr,
        "POST",
        "/summarize",
        &[],
        br#"{"dataset": "small", "steps": 3}"#,
        30_000,
    )
    .expect("request completes");
    assert_eq!(status, 200, "{body}");
    let (status, _) = client_request(&addr, "GET", "/healthz", &[], b"", 10_000).expect("healthz");
    assert_eq!(status, 200);
    handle.shutdown();
}
