//! End-to-end resilience: worker supervision under the `panic` fault
//! site, per-tenant 429 semantics over a real socket, and the draining
//! health state during shutdown.
//!
//! Own test binary: the fault plan is process-global, so injected panics
//! must not share a process with tests expecting healthy workers.

use prox_obs::Json;
use prox_robust::FaultGuard;
use prox_serve::http::{client_request, client_request_full};
use prox_serve::{HealthState, Server, ServerConfig};

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 8,
        default_budget_ms: 10_000,
        io_deadline_ms: 10_000,
        ..ServerConfig::default()
    }
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn workers_survive_injected_panics_and_answer_typed_500s() {
    // Threshold high enough that the breaker never opens: this test
    // isolates supervision, not breaking.
    let mut cfg = config();
    cfg.breaker_threshold = 100;
    let handle = Server::start(cfg).expect("server starts");
    let addr = handle.addr().to_string();

    {
        // Every summarize panics; each must come back as a typed 500,
        // never a hung or reset connection.
        let _g = FaultGuard::install("panic@1:7").expect("valid spec");
        for i in 0..4 {
            let (status, body) = client_request(
                &addr,
                "POST",
                "/summarize",
                &[],
                format!(r#"{{"dataset": "small", "steps": {}}}"#, 2 + i).as_bytes(),
                30_000,
            )
            .expect("panicked request is still answered");
            assert_eq!(status, 500, "attempt {i}: {body}");
            let parsed = Json::parse(&body).expect("panic body is JSON");
            assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("internal"));
        }
        assert_eq!(handle.health().state(), HealthState::Degraded);
    }

    // Harness restored: the same workers summarize successfully — the
    // pool recovered without dropping a thread.
    let (status, body) = client_request(
        &addr,
        "POST",
        "/summarize",
        &[],
        br#"{"dataset": "small", "steps": 3}"#,
        30_000,
    )
    .expect("request completes");
    assert_eq!(status, 200, "{body}");
    let (status, body) = client_request(&addr, "GET", "/healthz", &[], b"", 10_000).expect("hz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    handle.shutdown();
}

#[test]
fn panicking_request_does_not_drop_requests_queued_behind_it() {
    let mut cfg = config();
    cfg.workers = 1; // one worker: queued requests sit behind the panic
    cfg.breaker_threshold = 100;
    let handle = Server::start(cfg).expect("server starts");
    let addr = handle.addr().to_string();
    let _g = FaultGuard::install("panic@1:11").expect("valid spec");

    // Fire several requests; the single supervised worker must answer
    // every one with a typed 500 (queue drained, worker alive).
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                client_request(
                    &addr,
                    "POST",
                    "/summarize",
                    &[],
                    format!(r#"{{"dataset": "small", "steps": {}}}"#, 2 + i).as_bytes(),
                    30_000,
                )
            })
        })
        .collect();
    for t in threads {
        let (status, body) = t.join().expect("client thread").expect("answered");
        assert_eq!(status, 500, "{body}");
    }
    drop(_g);
    handle.shutdown();
}

#[test]
fn hot_tenant_gets_429_with_retry_after_and_other_tenants_are_isolated() {
    let mut cfg = config();
    cfg.tenant_rate = 0.1; // refills far slower than the test fires
    cfg.tenant_burst = 2.0;
    let handle = Server::start(cfg).expect("server starts");
    let addr = handle.addr().to_string();
    let body = br#"{"dataset": "small", "steps": 2}"#;

    let mut saw_429 = false;
    for i in 0..4 {
        let (status, headers, resp) = client_request_full(
            &addr,
            "POST",
            "/summarize",
            &[("X-Prox-Tenant", "hog".to_owned())],
            body,
            30_000,
        )
        .expect("answered");
        if i < 2 {
            assert_eq!(status, 200, "burst admits the first two: {resp}");
        } else {
            assert_eq!(status, 429, "bucket empty: {resp}");
            saw_429 = true;
            let retry = header(&headers, "retry-after").expect("429 carries Retry-After");
            assert!(retry.parse::<u64>().expect("integer seconds") >= 1);
            let parsed = Json::parse(&resp).expect("JSON error body");
            assert_eq!(
                parsed.get("kind").and_then(Json::as_str),
                Some("rate_limited")
            );
        }
    }
    assert!(saw_429);

    // A different tenant — and an unlabelled request — are unaffected.
    let (status, _, _) = client_request_full(
        &addr,
        "POST",
        "/summarize",
        &[("X-Prox-Tenant", "quiet".to_owned())],
        body,
        30_000,
    )
    .expect("answered");
    assert_eq!(status, 200);
    let (status, _) =
        client_request(&addr, "POST", "/summarize", &[], body, 30_000).expect("answered");
    assert_eq!(status, 200, "no tenant header bypasses the limiter");
    handle.shutdown();
}

#[test]
fn draining_healthz_is_503_with_retry_after() {
    let handle = Server::start(config()).expect("server starts");
    let health = handle.health();
    assert_eq!(health.state(), HealthState::Healthy);
    // `shutdown()` joins the pool, so probe the state machine through the
    // same handle the server uses rather than racing the drain over TCP.
    health.begin_drain();
    let ctx = prox_serve::service::ServiceCtx::new(4, 1_000, handle.shutdown_flag());
    ctx.health.begin_drain();
    let req = prox_serve::Request {
        method: "GET".into(),
        path: "/healthz".into(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let resp = prox_serve::service::route(&req, &ctx);
    assert_eq!(resp.status, 503);
    assert_eq!(resp.retry_after, Some(1));
    assert!(
        resp.body.contains("\"status\":\"draining\""),
        "{}",
        resp.body
    );
    handle.shutdown();
}
