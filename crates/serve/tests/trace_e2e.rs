//! End-to-end trace propagation: `X-Prox-Trace-Id` on every response,
//! `/debug/traces` round-trips, and the tail-sampling retention policy.
//!
//! Own test binary: tracing is gated on the process-global prox-obs
//! enabled flag, and these assertions must not race unrelated tests.

// Harness helpers outside #[test] fns still panic on broken setup.
#![allow(clippy::expect_used)]

use prox_obs::Json;
use prox_serve::http::client_request_full;
use prox_serve::{Server, ServerConfig, ServerHandle};

fn start(sample_rate: f64, capacity: usize) -> ServerHandle {
    prox_obs::set_enabled(true);
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 8,
        default_budget_ms: 10_000,
        io_deadline_ms: 30_000,
        trace_seed: 42,
        trace_sample_rate: sample_rate,
        trace_capacity: capacity,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn span_names(node: &Json, out: &mut Vec<String>) {
    if let Some(name) = node.get("name").and_then(Json::as_str) {
        out.push(name.to_owned());
    }
    if let Some(Json::Arr(children)) = node.get("children") {
        for child in children {
            span_names(child, out);
        }
    }
}

#[test]
fn every_response_carries_a_trace_id_and_the_tree_round_trips() {
    let handle = start(1.0, 32);
    let addr = handle.addr().to_string();

    let (status, headers, body) = client_request_full(
        &addr,
        "POST",
        "/summarize",
        &[],
        br#"{"dataset": "small", "steps": 3}"#,
        30_000,
    )
    .expect("request completes");
    assert_eq!(status, 200, "{body}");
    let id = header(&headers, "x-prox-trace-id")
        .expect("X-Prox-Trace-Id on every response")
        .to_owned();
    assert_eq!(id.len(), 16, "canonical 16-hex id, got {id:?}");

    // GET responses carry ids too, and they differ per request.
    let (_, h2, _) =
        client_request_full(&addr, "GET", "/healthz", &[], b"", 10_000).expect("healthz");
    let id2 = header(&h2, "x-prox-trace-id").expect("id on GET");
    assert_ne!(id, id2, "trace ids must be per-request");

    // The listing shows the retained trace; the id fetch returns the
    // full span tree with the phases of Algorithm 1 beneath the root.
    let (status, _, list) =
        client_request_full(&addr, "GET", "/debug/traces", &[], b"", 10_000).expect("list");
    assert_eq!(status, 200);
    let list = Json::parse(&list).expect("listing is JSON");
    assert!(list.get("count").and_then(Json::as_u64).unwrap_or(0) >= 1);

    let (status, _, tree) = client_request_full(
        &addr,
        "GET",
        &format!("/debug/traces/{id}"),
        &[],
        b"",
        10_000,
    )
    .expect("trace fetch");
    assert_eq!(status, 200, "{tree}");
    let tree = Json::parse(&tree).expect("trace is JSON");
    assert_eq!(
        tree.get("trace_id").and_then(Json::as_str),
        Some(id.as_str())
    );
    assert_eq!(tree.get("retained").and_then(Json::as_str), Some("sampled"));
    let spans = match tree.get("spans") {
        Some(Json::Arr(spans)) => spans,
        other => panic!("spans missing: {other:?}"),
    };
    let mut names = Vec::new();
    for root in spans {
        span_names(root, &mut names);
    }
    for phase in [
        "request",
        "service",
        "summarize",
        "enumerate",
        "cluster",
        "evaluate",
    ] {
        assert!(
            names.iter().any(|n| n == phase),
            "missing {phase} in {names:?}"
        );
    }

    // An unknown id is a 404, not a panic or an empty 200.
    let (status, _, _) = client_request_full(
        &addr,
        "GET",
        "/debug/traces/ffffffffffffffff",
        &[],
        b"",
        10_000,
    )
    .expect("missing-trace fetch");
    assert_eq!(status, 404);
    handle.shutdown();
}

#[test]
fn errors_and_degraded_runs_are_retained_even_at_rate_zero() {
    let handle = start(0.0, 32);
    let addr = handle.addr().to_string();

    // Healthy request: sampled out at rate 0.0.
    let (status, headers, _) = client_request_full(
        &addr,
        "POST",
        "/summarize",
        &[],
        br#"{"dataset": "small", "steps": 2}"#,
        30_000,
    )
    .expect("healthy request");
    assert_eq!(status, 200);
    let healthy_id = header(&headers, "x-prox-trace-id").expect("id").to_owned();

    // Errored request (400): always retained.
    let (status, headers, _) =
        client_request_full(&addr, "POST", "/summarize", &[], b"{nope", 30_000)
            .expect("bad request");
    assert_eq!(status, 400);
    let error_id = header(&headers, "x-prox-trace-id").expect("id").to_owned();

    // Degraded run (mid-run step-budget trip, still 200): always retained.
    let (status, headers, body) = client_request_full(
        &addr,
        "POST",
        "/summarize",
        &[],
        br#"{"budget_steps": 2, "steps": 8}"#,
        30_000,
    )
    .expect("degraded request");
    assert_eq!(status, 200, "{body}");
    let degraded_id = header(&headers, "x-prox-trace-id").expect("id").to_owned();

    let fetch = |id: &str| {
        client_request_full(
            &addr,
            "GET",
            &format!("/debug/traces/{id}"),
            &[],
            b"",
            10_000,
        )
        .expect("fetch")
        .0
    };
    assert_eq!(fetch(&healthy_id), 404, "healthy trace sampled out");
    assert_eq!(fetch(&error_id), 200, "errored trace always retained");
    assert_eq!(fetch(&degraded_id), 200, "degraded trace always retained");

    let (_, _, tree) = client_request_full(
        &addr,
        "GET",
        &format!("/debug/traces/{degraded_id}"),
        &[],
        b"",
        10_000,
    )
    .expect("degraded tree");
    let tree = Json::parse(&tree).expect("tree is JSON");
    assert_eq!(
        tree.get("retained").and_then(Json::as_str),
        Some("degraded")
    );
    handle.shutdown();
}

/// A burst of healthy traffic must not evict the interesting tail: with a
/// tiny ring, the errored trace survives while old sampled traces go.
#[test]
fn ring_keeps_the_errored_tail_through_a_healthy_burst() {
    let handle = start(1.0, 4);
    let addr = handle.addr().to_string();

    let (status, headers, _) =
        client_request_full(&addr, "POST", "/summarize", &[], b"{bad", 30_000).expect("error");
    assert_eq!(status, 400);
    let error_id = header(&headers, "x-prox-trace-id").expect("id").to_owned();

    for _ in 0..8 {
        let (status, _, _) =
            client_request_full(&addr, "GET", "/healthz", &[], b"", 10_000).expect("healthz");
        assert_eq!(status, 200);
    }

    let (status, _, _) = client_request_full(
        &addr,
        "GET",
        &format!("/debug/traces/{error_id}"),
        &[],
        b"",
        10_000,
    )
    .expect("fetch");
    assert_eq!(status, 200, "errored trace must survive the burst");
    let (_, _, list) =
        client_request_full(&addr, "GET", "/debug/traces", &[], b"", 10_000).expect("list");
    let list = Json::parse(&list).expect("listing is JSON");
    assert_eq!(
        list.get("count").and_then(Json::as_u64),
        Some(4),
        "{list:?}"
    );
    handle.shutdown();
}
