//! Building a segment store: streaming writes, content-address dedup,
//! and the run-length logical log.
//!
//! A store directory contains:
//!
//! * `store.json`  — manifest (counts, shard list, checksums); the
//!   JSON debug/interchange view of the store's shape;
//! * `anns.bin`    — the annotation tables (see `codec::encode_annstore`);
//! * `seg-XX.seg`  — one segment per fingerprint-prefix shard holding
//!   each unique frame exactly once;
//! * `log.bin`     — the *logical* entry stream as run-length records
//!   `[u64 fingerprint][u64 count]`, so ten million logical expressions
//!   that share a hundred thousand distinct frames stay proportional to
//!   the distinct count on disk.
//!
//! Dedup is exact: a frame is written the first time its fingerprint is
//! seen; every later logical occurrence only grows a run in the log and
//! the `store/dedup_hit` counter.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use prox_obs::store_metrics::DEDUP_HIT;
use prox_obs::Json;
use prox_provenance::{AggKind, AnnId, AnnStore, Tensor};
use prox_robust::ProxError;

use crate::codec::{encode_annstore, encode_entry, END_MAGIC};
use crate::fp::{fnv64, fnv64_update, shard_of, FNV_OFFSET, SHARDS};
use crate::segment::{SegmentMeta, SegmentWriter};

/// Magic prefix of `log.bin`.
pub const LOG_MAGIC: &[u8; 8] = b"PROXLOG1";
/// Bytes per run-length record in the log.
pub const LOG_ENTRY_BYTES: usize = 16;
/// Manifest file name.
pub const MANIFEST_FILE: &str = "store.json";
/// Annotation table file name.
pub const ANNS_FILE: &str = "anns.bin";
/// Logical log file name.
pub const LOG_FILE: &str = "log.bin";
/// Manifest format tag.
pub const FORMAT: &str = "prox-store/v1";

/// What `StoreBuilder::finish` reports (and writes into `store.json`).
#[derive(Clone, Debug)]
pub struct StoreSummary {
    pub logical: u64,
    pub unique: u64,
    pub log_entries: u64,
    pub annotations: u64,
    pub payload_bytes: u64,
    pub segments: Vec<SegmentMeta>,
}

impl StoreSummary {
    /// Logical expressions per stored frame (1.0 when nothing repeats).
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique == 0 {
            0.0
        } else {
            self.logical as f64 / self.unique as f64
        }
    }
}

/// Streaming store writer. Segment frames and log records go through
/// `BufWriter`s as they arrive; only the dedup set (one `u64` per unique
/// frame) and the per-segment offset indexes are held in memory.
pub struct StoreBuilder {
    dir: PathBuf,
    agg: AggKind,
    writers: Vec<Option<SegmentWriter>>,
    seen: BTreeMap<u64, u32>,
    log: BufWriter<File>,
    log_entries: u64,
    log_checksum: u64,
    logical: u64,
    payload_bytes: u64,
    run: Option<(u64, u64)>,
    annotations: u64,
}

impl StoreBuilder {
    /// Create `dir` (and parents), write the annotation table, and open
    /// the logical log. The annotation store is fixed at creation: every
    /// frame appended later refers into it by id.
    pub fn create(dir: &Path, anns: &AnnStore, agg: AggKind) -> Result<StoreBuilder, ProxError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ProxError::io(format!("create store dir {}", dir.display()), &e))?;
        let ann_bytes = encode_annstore(anns)?;
        let ann_path = dir.join(ANNS_FILE);
        std::fs::write(&ann_path, &ann_bytes)
            .map_err(|e| ProxError::io(format!("write {}", ann_path.display()), &e))?;
        let log_path = dir.join(LOG_FILE);
        let log_file = File::create(&log_path)
            .map_err(|e| ProxError::io(format!("create {}", log_path.display()), &e))?;
        let mut log = BufWriter::new(log_file);
        log.write_all(LOG_MAGIC)
            .map_err(|e| ProxError::io("write log magic", &e))?;
        let mut writers = Vec::with_capacity(SHARDS);
        writers.resize_with(SHARDS, || None);
        Ok(StoreBuilder {
            dir: dir.to_path_buf(),
            agg,
            writers,
            seen: BTreeMap::new(),
            log,
            log_entries: 0,
            log_checksum: FNV_OFFSET,
            logical: 0,
            payload_bytes: 0,
            run: None,
            annotations: anns.len() as u64,
        })
    }

    /// Append `multiplicity` logical occurrences of one expression.
    /// Returns its content address. The frame itself is written only on
    /// first sight; duplicates count as dedup hits.
    pub fn append(
        &mut self,
        object: AnnId,
        tensor: &Tensor,
        multiplicity: u64,
    ) -> Result<u64, ProxError> {
        if multiplicity == 0 {
            return Err(ProxError::config("store append with multiplicity 0"));
        }
        let payload = encode_entry(object, tensor);
        let fp = fnv64(&payload);
        if self.seen.contains_key(&fp) {
            DEDUP_HIT.add(multiplicity);
        } else {
            let shard = shard_of(fp) as usize;
            if self.writers[shard].is_none() {
                self.writers[shard] = Some(SegmentWriter::create(&self.dir, shard as u8)?);
            }
            match &mut self.writers[shard] {
                Some(w) => w.append(fp, &payload)?,
                // Unreachable: just created above. Typed error, not a panic.
                None => return Err(ProxError::internal("segment writer vanished")),
            };
            self.seen.insert(fp, payload.len() as u32);
            self.payload_bytes += payload.len() as u64;
            // The first logical occurrence pays for the frame; the rest
            // of this run already shares it.
            DEDUP_HIT.add(multiplicity - 1);
        }
        self.logical += multiplicity;
        match &mut self.run {
            Some((run_fp, count)) if *run_fp == fp => *count += multiplicity,
            _ => {
                self.flush_run()?;
                self.run = Some((fp, multiplicity));
            }
        }
        Ok(fp)
    }

    fn flush_run(&mut self) -> Result<(), ProxError> {
        if let Some((fp, count)) = self.run.take() {
            let mut rec = [0u8; LOG_ENTRY_BYTES];
            rec[..8].copy_from_slice(&fp.to_le_bytes());
            rec[8..].copy_from_slice(&count.to_le_bytes());
            self.log
                .write_all(&rec)
                .map_err(|e| ProxError::io("append log record", &e))?;
            self.log_checksum = fnv64_update(self.log_checksum, &rec);
            self.log_entries += 1;
        }
        Ok(())
    }

    /// Seal every segment, footer the log, and write the manifest.
    pub fn finish(mut self) -> Result<StoreSummary, ProxError> {
        self.flush_run()?;
        let io = |what: &str, e: &std::io::Error| ProxError::io(format!("finish log: {what}"), e);
        self.log
            .write_all(&self.log_entries.to_le_bytes())
            .map_err(|e| io("entry count", &e))?;
        self.log
            .write_all(&self.log_checksum.to_le_bytes())
            .map_err(|e| io("checksum", &e))?;
        self.log
            .write_all(END_MAGIC)
            .map_err(|e| io("end magic", &e))?;
        self.log.flush().map_err(|e| io("flush", &e))?;

        let mut segments = Vec::new();
        for writer in self.writers.into_iter().flatten() {
            segments.push(writer.finish()?);
        }
        let summary = StoreSummary {
            logical: self.logical,
            unique: self.seen.len() as u64,
            log_entries: self.log_entries,
            annotations: self.annotations,
            payload_bytes: self.payload_bytes,
            segments,
        };
        let manifest = manifest_json(&summary, self.agg, self.log_checksum);
        let path = self.dir.join(MANIFEST_FILE);
        let mut text = manifest.sorted().pretty();
        text.push('\n');
        std::fs::write(&path, text)
            .map_err(|e| ProxError::io(format!("write {}", path.display()), &e))?;
        Ok(summary)
    }
}

fn manifest_json(s: &StoreSummary, agg: AggKind, log_checksum: u64) -> Json {
    let mut counts = Json::obj();
    counts.set("logical", s.logical);
    counts.set("unique", s.unique);
    counts.set("log_entries", s.log_entries);
    counts.set("annotations", s.annotations);
    counts.set("payload_bytes", s.payload_bytes);

    let segs = Json::Arr(
        s.segments
            .iter()
            .map(|m| {
                let mut j = Json::obj();
                j.set("shard", format!("{:02x}", m.shard));
                j.set("file", crate::segment::segment_file(m.shard));
                j.set("frames", m.frames);
                j.set("payload_bytes", m.payload_bytes);
                j.set("file_bytes", m.file_bytes);
                j
            })
            .collect(),
    );

    let mut log = Json::obj();
    log.set("file", LOG_FILE);
    log.set("entries", s.log_entries);
    log.set("checksum", format!("{log_checksum:016x}"));

    let mut j = Json::obj();
    j.set("format", FORMAT);
    j.set("version", 1u64);
    j.set("agg", agg.name());
    j.set("fingerprint", "fnv1a64");
    j.set("counts", counts);
    j.set("segments", segs);
    j.set("log", log);
    j.set("anns_file", ANNS_FILE);
    j
}

/// Parse an `AggKind` back from its manifest name.
pub fn agg_from_name(name: &str) -> Result<AggKind, ProxError> {
    match name {
        "MAX" => Ok(AggKind::Max),
        "MIN" => Ok(AggKind::Min),
        "SUM" => Ok(AggKind::Sum),
        "COUNT" => Ok(AggKind::Count),
        other => Err(ProxError::corrupt(
            "store manifest",
            format!("unknown aggregation kind '{other}'"),
        )),
    }
}
