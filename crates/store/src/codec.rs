//! Compact length-prefixed binary framing for provenance expressions.
//!
//! A *frame payload* encodes one store entry `(object, tensor)` — the
//! unit the summarizer consumes via [`ProvExpr::push`]. The encoding is
//! canonical (no padding, fixed field order, little-endian), so equal
//! expressions produce equal bytes and the FNV fingerprint of the
//! payload is a content address.
//!
//! The in-tree `prox_obs::Json` shape produced by [`entry_to_json`] is
//! the debug/interchange format: `prox store stat --sample` prints it,
//! and tests use it to compare decoded entries structurally.
//!
//! Every decoder returns a typed [`ProxError::Corrupt`] on truncated or
//! malformed input — never a panic — and validates declared lengths
//! against the bytes actually present before allocating.

use prox_obs::Json;
use prox_provenance::{AggValue, AnnId, AnnStore, CmpOp, Guard, Monomial, Polynomial, Tensor};
use prox_robust::ProxError;

use crate::fp::{fnv64, FNV_OFFSET};

/// Hard cap on any single frame payload. Corrupt length fields must not
/// translate into multi-gigabyte allocations.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

// ---------------------------------------------------------------------------
// Primitive writer
// ---------------------------------------------------------------------------

/// Append-only byte buffer with the primitive little-endian writers the
/// framing is built from.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

// ---------------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------------

/// Cursor over a byte slice. Every read is bounds-checked and failures
/// carry the caller's context string so `prox store verify` can say
/// *which* structure was truncated.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8], context: &'static str) -> Dec<'a> {
        Dec {
            buf,
            pos: 0,
            context,
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> ProxError {
        ProxError::corrupt(self.context, detail)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProxError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| self.corrupt("length overflow"))?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| {
            self.corrupt(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len().saturating_sub(self.pos)
            ))
        })?;
        self.pos = end;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, ProxError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, ProxError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    pub fn u64(&mut self) -> Result<u64, ProxError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn f64(&mut self) -> Result<f64, ProxError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<&'a str, ProxError> {
        let n = self.len_field("string")?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|e| self.corrupt(format!("invalid utf-8: {e}")))
    }

    /// Read a count/length field and sanity-check it against the bytes
    /// still available (each counted item needs at least one byte), so a
    /// corrupt count cannot drive a huge allocation.
    pub fn len_field(&mut self, what: &str) -> Result<usize, ProxError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len().saturating_sub(self.pos);
        if n > remaining {
            return Err(self.corrupt(format!(
                "{what} count {n} exceeds {remaining} remaining bytes"
            )));
        }
        Ok(n)
    }

    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    pub fn finish(&self) -> Result<(), ProxError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Expression framing
// ---------------------------------------------------------------------------

fn encode_poly(enc: &mut Enc, p: &Polynomial) {
    let terms = p.terms();
    enc.put_u32(terms.len() as u32);
    for (m, coeff) in terms {
        let factors = m.factors();
        enc.put_u32(factors.len() as u32);
        for a in factors {
            enc.put_u32(a.index() as u32);
        }
        enc.put_u64(*coeff);
    }
}

fn op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Gt => 0,
        CmpOp::Ge => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Eq => 4,
        CmpOp::Ne => 5,
    }
}

fn op_from_tag(tag: u8, dec: &Dec<'_>) -> Result<CmpOp, ProxError> {
    Ok(match tag {
        0 => CmpOp::Gt,
        1 => CmpOp::Ge,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Eq,
        5 => CmpOp::Ne,
        other => return Err(dec.corrupt(format!("unknown comparison op tag {other}"))),
    })
}

/// Serialize one store entry into a canonical frame payload.
pub fn encode_entry(object: AnnId, t: &Tensor) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u32(object.index() as u32);
    encode_poly(&mut enc, &t.prov);
    enc.put_u32(t.guards.len() as u32);
    for g in &t.guards {
        enc.put_u32(g.lhs.len() as u32);
        for (p, w) in &g.lhs {
            encode_poly(&mut enc, p);
            enc.put_f64(*w);
        }
        enc.put_u8(op_tag(g.op));
        enc.put_f64(g.rhs);
    }
    enc.put_f64(t.value.value);
    enc.put_u64(t.value.count);
    enc.into_bytes()
}

fn decode_ann(dec: &mut Dec<'_>, max_ann: usize) -> Result<AnnId, ProxError> {
    let ix = dec.u32()? as usize;
    if ix >= max_ann {
        return Err(ProxError::corrupt(
            "store frame",
            format!("annotation id {ix} out of range (store has {max_ann})"),
        ));
    }
    Ok(AnnId::from_index(ix))
}

fn decode_poly(dec: &mut Dec<'_>, max_ann: usize) -> Result<Polynomial, ProxError> {
    let n_terms = dec.len_field("polynomial term")?;
    let mut terms = Vec::with_capacity(n_terms.min(1024));
    for _ in 0..n_terms {
        let n_factors = dec.len_field("monomial factor")?;
        let mut factors = Vec::with_capacity(n_factors.min(1024));
        for _ in 0..n_factors {
            factors.push(decode_ann(dec, max_ann)?);
        }
        let coeff = dec.u64()?;
        terms.push((Monomial::from_factors(factors), coeff));
    }
    Ok(Polynomial::from_terms(terms))
}

/// Decode a frame payload back into `(object, tensor)`. `max_ann` is the
/// annotation-store size; any id at or past it is a corruption, not an
/// index-out-of-bounds panic later.
pub fn decode_entry(payload: &[u8], max_ann: usize) -> Result<(AnnId, Tensor), ProxError> {
    let mut dec = Dec::new(payload, "store frame");
    let object = decode_ann(&mut dec, max_ann)?;
    let prov = decode_poly(&mut dec, max_ann)?;
    let n_guards = dec.len_field("guard")?;
    let mut guards = Vec::with_capacity(n_guards.min(1024));
    for _ in 0..n_guards {
        let n_lhs = dec.len_field("guard lhs term")?;
        let mut lhs = Vec::with_capacity(n_lhs.min(1024));
        for _ in 0..n_lhs {
            let p = decode_poly(&mut dec, max_ann)?;
            let w = dec.f64()?;
            lhs.push((p, w));
        }
        let tag = dec.u8()?;
        let op = op_from_tag(tag, &dec)?;
        let rhs = dec.f64()?;
        guards.push(Guard { lhs, op, rhs });
    }
    let value = dec.f64()?;
    let count = dec.u64()?;
    dec.finish()?;
    let agg = AggValue { value, count };
    let tensor = if guards.is_empty() {
        Tensor::new(prov, agg)
    } else {
        Tensor::guarded(prov, guards, agg)
    };
    Ok((object, tensor))
}

// ---------------------------------------------------------------------------
// Annotation-store framing (`anns.bin`)
// ---------------------------------------------------------------------------

/// Magic prefix of `anns.bin`.
pub const ANN_MAGIC: &[u8; 8] = b"PROXANN1";
/// Trailing magic shared by every store file.
pub const END_MAGIC: &[u8; 8] = b"PROXEND1";

/// Serialize an [`AnnStore`] (base annotations only — summaries are
/// *outputs* of summarization, a store holds inputs). Layout: magic,
/// `u32` count, per annotation `{name, domain, attrs, concept}`, then an
/// FNV checksum of everything after the magic, then the end magic.
pub fn encode_annstore(store: &AnnStore) -> Result<Vec<u8>, ProxError> {
    let mut enc = Enc::new();
    enc.put_u32(store.len() as u32);
    for (id, ann) in store.iter() {
        if ann.kind.is_summary() {
            return Err(ProxError::unsupported(format!(
                "segment stores hold base provenance; annotation '{}' is a summary",
                store.name(id)
            )));
        }
        enc.put_str(&ann.name);
        enc.put_str(store.domain_name(ann.domain));
        enc.put_u32(ann.attrs.len() as u32);
        for (attr, val) in &ann.attrs {
            enc.put_str(store.attr_name(*attr));
            enc.put_str(store.value_name(*val));
        }
        match ann.concept {
            Some(c) => {
                enc.put_u8(1);
                enc.put_u32(c);
            }
            None => enc.put_u8(0),
        }
    }
    let body = enc.into_bytes();
    let mut out = Vec::with_capacity(body.len() + 24);
    out.extend_from_slice(ANN_MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&fnv64(&body).to_le_bytes());
    out.extend_from_slice(END_MAGIC);
    Ok(out)
}

/// Decode `anns.bin`, verifying magic and checksum. Rebuilding through
/// [`AnnStore::add_base_with`] re-interns every string, so decoded ids
/// are sequential and equal to the encoded ones.
pub fn decode_annstore(bytes: &[u8]) -> Result<AnnStore, ProxError> {
    const CTX: &str = "annotation store (anns.bin)";
    if bytes.len() < 24 || &bytes[..8] != ANN_MAGIC {
        return Err(ProxError::corrupt(CTX, "missing or short header magic"));
    }
    let tail = bytes.len() - 16;
    if &bytes[tail + 8..] != END_MAGIC {
        return Err(ProxError::corrupt(CTX, "missing end magic"));
    }
    let body = &bytes[8..tail];
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[tail..tail + 8]);
    let want = u64::from_le_bytes(sum);
    let got = fnv64(body);
    if want != got {
        return Err(ProxError::corrupt(
            CTX,
            format!("checksum mismatch: stored {want:016x}, computed {got:016x}"),
        ));
    }
    let mut dec = Dec::new(body, CTX);
    let n = dec.len_field("annotation")?;
    let mut store = AnnStore::new();
    for _ in 0..n {
        let name = dec.str()?.to_string();
        let domain = dec.str()?.to_string();
        let n_attrs = dec.len_field("attribute")?;
        let mut attrs = Vec::with_capacity(n_attrs.min(64));
        for _ in 0..n_attrs {
            let a = dec.str()?.to_string();
            let v = dec.str()?.to_string();
            attrs.push((a, v));
        }
        let concept = if dec.u8()? == 1 {
            Some(dec.u32()?)
        } else {
            None
        };
        let attr_refs: Vec<(&str, &str)> = attrs
            .iter()
            .map(|(a, v)| (a.as_str(), v.as_str()))
            .collect();
        let id = store.add_base_with(&name, &domain, &attr_refs);
        if let Some(c) = concept {
            store.set_concept(id, c);
        }
    }
    dec.finish()?;
    Ok(store)
}

// ---------------------------------------------------------------------------
// JSON debug / interchange
// ---------------------------------------------------------------------------

fn poly_json(p: &Polynomial) -> Json {
    Json::Arr(
        p.terms()
            .iter()
            .map(|(m, c)| {
                Json::Arr(vec![
                    Json::Arr(
                        m.factors()
                            .iter()
                            .map(|a| Json::from(a.index() as u64))
                            .collect(),
                    ),
                    Json::from(*c),
                ])
            })
            .collect(),
    )
}

/// Render one decoded entry in the debug/interchange JSON shape used by
/// `prox store stat --sample` (annotation names resolved through `anns`).
pub fn entry_to_json(anns: &AnnStore, object: AnnId, t: &Tensor, multiplicity: u64) -> Json {
    let mut j = Json::obj();
    j.set("object", anns.name(object));
    j.set("multiplicity", multiplicity);
    j.set("prov", poly_json(&t.prov));
    if !t.guards.is_empty() {
        j.set(
            "guards",
            Json::Arr(
                t.guards
                    .iter()
                    .map(|g| {
                        let mut gj = Json::obj();
                        gj.set(
                            "lhs",
                            Json::Arr(
                                g.lhs
                                    .iter()
                                    .map(|(p, w)| Json::Arr(vec![poly_json(p), Json::from(*w)]))
                                    .collect(),
                            ),
                        );
                        gj.set("op", g.op.symbol());
                        gj.set("rhs", g.rhs);
                        gj
                    })
                    .collect(),
            ),
        );
    }
    j.set(
        "value",
        Json::Arr(vec![Json::from(t.value.value), Json::from(t.value.count)]),
    );
    j
}

/// Convenience: fingerprint of an encoded entry (content address).
pub fn entry_fingerprint(object: AnnId, t: &Tensor) -> u64 {
    fnv64(&encode_entry(object, t))
}

/// Seed value for incremental checksums (re-exported for writers).
pub const CHECKSUM_SEED: u64 = FNV_OFFSET;
