//! Content addressing: FNV-1a 64 over encoded frame bytes.
//!
//! Same constants as the request fingerprint in `prox-serve` (and the
//! frame checksums in this crate), so a fingerprint printed anywhere in
//! the system is comparable with a fingerprint printed anywhere else.

/// FNV-1a 64 offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte slice.
#[inline]
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_update(FNV_OFFSET, bytes)
}

/// Fold more bytes into a running FNV-1a 64 state. Because FNV is a
/// plain byte fold, `fnv64(ab) == fnv64_update(fnv64_update(OFFSET, a), b)`
/// — writers checksum streams without buffering them.
#[inline]
pub fn fnv64_update(mut state: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        state ^= u64::from(*b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Number of segment shards (one hex digit of fingerprint prefix).
pub const SHARDS: usize = 16;

/// Which segment shard a fingerprint lands in: its top nibble. Sharding
/// by *prefix* keeps each segment's offset index sorted by fingerprint,
/// so a lookup touches exactly one segment.
#[inline]
pub fn shard_of(fp: u64) -> u8 {
    (fp >> 60) as u8
}

/// Render a fingerprint the way the rest of the system prints them
/// (16 lowercase hex digits, matching `prox_serve::fingerprint`).
pub fn render_fp(fp: u64) -> String {
    format!("{fp:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serve_fingerprint_constants() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fnv64(b""), FNV_OFFSET);
        // Well-known FNV-1a 64 vector.
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn update_is_concatenation() {
        let whole = fnv64(b"hello world");
        let split = fnv64_update(fnv64(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn shards_cover_prefix_nibble() {
        assert_eq!(shard_of(0x0000_0000_0000_0001), 0);
        assert_eq!(shard_of(0xf000_0000_0000_0000), 15);
        assert_eq!(shard_of(0x8abc_0000_0000_0000), 8);
    }
}
