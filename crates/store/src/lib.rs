//! # prox-store — out-of-core content-addressable provenance store
//!
//! An append-only segment store for provenance expressions, built so the
//! summarizer can work over provenance far larger than memory:
//!
//! * **Binary framing** ([`codec`]) — each entry `(object, tensor)` is a
//!   canonical length-prefixed frame; the in-tree `prox_obs::Json` shape
//!   is the debug/interchange format.
//! * **Content addressing** ([`fp`]) — frames are addressed by the
//!   FNV-1a 64 hash of their bytes (the same constants the serve cache
//!   fingerprints requests with), so identical subexpressions share one
//!   frame (*dedup*).
//! * **Segments** ([`segment`]) — frames are sharded by fingerprint
//!   prefix into append-only `seg-XX.seg` files, each with a sorted
//!   offset index and a checksummed footer.
//! * **Logical log** ([`builder`]) — the expression *stream* is a
//!   run-length list of fingerprints, so ten million logical
//!   expressions over a hundred thousand distinct frames stay small.
//! * **Paged reads** ([`pagecache`], [`reader`]) — frame loads go
//!   through a bounded LRU page cache; scans poll their
//!   [`prox_robust::BudgetSession`] before every page load, preserving
//!   the anytime contract (budget trips return the partial fold).
//! * **Verification** ([`verify`]) — an offline full-checksum pass with
//!   typed [`prox_robust::ProxError::Corrupt`] errors, wired through the
//!   `PROX_FAULT` harness.
//!
//! Observability: the `store/{page_hit,page_miss,dedup_hit,bytes_read}`
//! counters (declared in `prox_obs::store_metrics`) feed `/metrics` and
//! bench manifests automatically.

pub mod builder;
pub mod codec;
pub mod fp;
pub mod pagecache;
pub mod reader;
pub mod segment;
pub mod synth;
pub mod verify;

pub use builder::{agg_from_name, StoreBuilder, StoreSummary, ANNS_FILE, LOG_FILE, MANIFEST_FILE};
pub use codec::{decode_annstore, decode_entry, encode_annstore, encode_entry, entry_to_json};
pub use fp::{fnv64, render_fp, shard_of, SHARDS};
pub use pagecache::{CacheStats, PageCache, DEFAULT_CACHE_BYTES, DEFAULT_PAGE_BYTES};
pub use reader::{read_info, ScanOutcome, SegInfo, SegmentStore, StoreInfo};
pub use segment::{SegmentMeta, SegmentWriter};
pub use synth::{build_synthetic, SynthReport, SynthSpec};
pub use verify::{verify_store, VerifyReport};
