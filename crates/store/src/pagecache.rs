//! Bounded LRU page cache for segment reads.
//!
//! Frames are fetched through fixed-size pages keyed `(shard, page_no)`.
//! The cache holds at most `capacity_bytes` of page data; eviction is
//! least-recently-used with deterministic tie-breaking (lowest key), so
//! hit/miss counts — and therefore manifests — are byte-identical across
//! same-seed runs. Keys and pages live in `BTreeMap`s, not `HashMap`s:
//! iteration order feeds reports, and reports must be deterministic
//! (lint rule L8).

use std::collections::BTreeMap;

use prox_obs::store_metrics::{PAGE_HIT, PAGE_MISS};

/// Default page size: 64 KiB.
pub const DEFAULT_PAGE_BYTES: usize = 64 * 1024;
/// Default cache ceiling: 2 MiB.
pub const DEFAULT_CACHE_BYTES: usize = 2 * 1024 * 1024;

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct PageKey {
    /// Segment shard the page belongs to.
    pub shard: u8,
    /// Page number within the shard (`offset / page_bytes`).
    pub page: u64,
}

struct Page {
    bytes: Vec<u8>,
    last_used: u64,
}

/// Per-store cache statistics (the global `store/*` counters aggregate
/// across every store in the process; these are local to one).
#[derive(Clone, Copy, Default, Debug)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Largest number of cached bytes ever live at once — the value the
    /// bench manifest proves stays under the configured ceiling.
    pub peak_bytes: u64,
    pub live_bytes: u64,
    pub capacity_bytes: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The bounded page cache.
pub struct PageCache {
    pages: BTreeMap<PageKey, Page>,
    page_bytes: usize,
    capacity_bytes: usize,
    live_bytes: usize,
    tick: u64,
    stats: CacheStats,
}

impl PageCache {
    pub fn new(page_bytes: usize, capacity_bytes: usize) -> PageCache {
        let page_bytes = page_bytes.max(512);
        // The ceiling must admit at least one page or nothing is cacheable.
        let capacity_bytes = capacity_bytes.max(page_bytes);
        PageCache {
            pages: BTreeMap::new(),
            page_bytes,
            capacity_bytes,
            live_bytes: 0,
            tick: 0,
            stats: CacheStats {
                capacity_bytes: capacity_bytes as u64,
                ..CacheStats::default()
            },
        }
    }

    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Look a page up, refreshing its LRU stamp. A miss is counted here
    /// (callers immediately fault the page in via [`PageCache::insert`]).
    pub fn get(&mut self, key: PageKey) -> Option<&[u8]> {
        self.tick += 1;
        let tick = self.tick;
        match self.pages.get_mut(&key) {
            Some(page) => {
                page.last_used = tick;
                self.stats.hits += 1;
                PAGE_HIT.incr();
                Some(&page.bytes)
            }
            None => {
                self.stats.misses += 1;
                PAGE_MISS.incr();
                None
            }
        }
    }

    /// Insert a freshly loaded page, evicting least-recently-used pages
    /// until the ceiling holds. Returns a reference to the cached bytes.
    pub fn insert(&mut self, key: PageKey, bytes: Vec<u8>) -> &[u8] {
        self.tick += 1;
        let incoming = bytes.len();
        // Evict until the new page fits. The scan is O(pages), and the
        // ceiling bounds pages to a small constant (capacity / page size).
        while self.live_bytes + incoming > self.capacity_bytes && !self.pages.is_empty() {
            let victim = self
                .pages
                .iter()
                .min_by_key(|(k, p)| (p.last_used, **k))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(p) = self.pages.remove(&k) {
                        self.live_bytes -= p.bytes.len();
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
        self.live_bytes += incoming;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.live_bytes as u64);
        self.stats.live_bytes = self.live_bytes as u64;
        let tick = self.tick;
        let entry = self.pages.entry(key).or_insert(Page {
            bytes,
            last_used: tick,
        });
        entry.last_used = tick;
        &entry.bytes
    }

    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.live_bytes = self.live_bytes as u64;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(shard: u8, page: u64) -> PageKey {
        PageKey { shard, page }
    }

    #[test]
    fn bounded_by_capacity() {
        let mut c = PageCache::new(1024, 2048);
        c.insert(key(0, 0), vec![0u8; 1024]);
        c.insert(key(0, 1), vec![0u8; 1024]);
        c.insert(key(0, 2), vec![0u8; 1024]);
        let s = c.stats();
        assert!(s.live_bytes <= 2048, "live {} over ceiling", s.live_bytes);
        assert!(s.peak_bytes <= 2048, "peak {} over ceiling", s.peak_bytes);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut c = PageCache::new(1024, 2048);
        c.insert(key(0, 0), vec![0u8; 1024]);
        c.insert(key(0, 1), vec![0u8; 1024]);
        assert!(c.get(key(0, 0)).is_some()); // refresh page 0
        c.insert(key(0, 2), vec![0u8; 1024]); // must evict page 1
        assert!(c.get(key(0, 0)).is_some());
        assert!(c.get(key(0, 1)).is_none());
        assert!(c.get(key(0, 2)).is_some());
    }

    #[test]
    fn hit_rate_is_hits_over_lookups() {
        let mut c = PageCache::new(1024, 4096);
        assert!(c.get(key(0, 0)).is_none());
        c.insert(key(0, 0), vec![1, 2, 3]);
        assert!(c.get(key(0, 0)).is_some());
        assert!(c.get(key(0, 0)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
