//! Reading a segment store: paged lazy loads, budget-polled scans, and
//! offline verification.
//!
//! [`SegmentStore::open`] loads only the manifest, the annotation table,
//! and the per-segment offset indexes; frame payloads stay on disk and
//! are faulted in page-by-page through the bounded [`PageCache`], so a
//! store far larger than memory can be summarized under a fixed cache
//! ceiling. Every scan loop polls its [`BudgetSession`] — deadlines,
//! step budgets, and cancel flags all interrupt a scan between page
//! loads, and the partial fold is returned as the anytime best-so-far.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use prox_obs::store_metrics::BYTES_READ;
use prox_obs::Json;
use prox_provenance::{AggKind, AnnId, AnnStore, ProvExpr, StoreBackend, Tensor};
use prox_robust::{fault, BudgetSession, BudgetStop, ProxError};

use crate::builder::{
    agg_from_name, ANNS_FILE, FORMAT, LOG_ENTRY_BYTES, LOG_FILE, LOG_MAGIC, MANIFEST_FILE,
};
use crate::codec::{decode_annstore, decode_entry};
use crate::fp::{fnv64_update, FNV_OFFSET};
use crate::pagecache::{CacheStats, PageCache, PageKey, DEFAULT_CACHE_BYTES, DEFAULT_PAGE_BYTES};
use crate::segment::{parse_footer, parse_index_region, segment_file, FOOTER_BYTES, SEG_MAGIC};

/// One segment as described by the manifest.
#[derive(Clone, Debug)]
pub struct SegInfo {
    pub shard: u8,
    pub file: String,
    pub frames: u64,
    pub payload_bytes: u64,
    pub file_bytes: u64,
}

/// Parsed `store.json`.
#[derive(Clone, Debug)]
pub struct StoreInfo {
    pub agg: AggKind,
    pub logical: u64,
    pub unique: u64,
    pub log_entries: u64,
    pub annotations: u64,
    pub payload_bytes: u64,
    pub log_checksum: u64,
    pub segments: Vec<SegInfo>,
}

impl StoreInfo {
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique == 0 {
            0.0
        } else {
            self.logical as f64 / self.unique as f64
        }
    }
}

fn manifest_field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, ProxError> {
    j.get(key)
        .ok_or_else(|| ProxError::corrupt("store manifest", format!("missing field '{key}'")))
}

fn manifest_u64(j: &Json, key: &str) -> Result<u64, ProxError> {
    manifest_field(j, key)?.as_u64().ok_or_else(|| {
        ProxError::corrupt("store manifest", format!("field '{key}' is not an integer"))
    })
}

fn manifest_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, ProxError> {
    manifest_field(j, key)?.as_str().ok_or_else(|| {
        ProxError::corrupt("store manifest", format!("field '{key}' is not a string"))
    })
}

/// Read and parse `<dir>/store.json`.
pub fn read_info(dir: &Path) -> Result<StoreInfo, ProxError> {
    let path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| ProxError::io(format!("read {}", path.display()), &e))?;
    let j = Json::parse(&text).map_err(|e| {
        ProxError::corrupt(
            "store manifest",
            format!("{}: {}", path.display(), e.message()),
        )
    })?;
    let format = manifest_str(&j, "format")?;
    if format != FORMAT {
        return Err(ProxError::unsupported(format!(
            "store format '{format}' (this build reads '{FORMAT}')"
        )));
    }
    let counts = manifest_field(&j, "counts")?;
    let log = manifest_field(&j, "log")?;
    let checksum_hex = manifest_str(log, "checksum")?;
    let log_checksum = u64::from_str_radix(checksum_hex, 16).map_err(|e| {
        ProxError::corrupt(
            "store manifest",
            format!("bad log checksum '{checksum_hex}': {e}"),
        )
    })?;
    let mut segments = Vec::new();
    match manifest_field(&j, "segments")? {
        Json::Arr(items) => {
            for item in items {
                let shard_hex = manifest_str(item, "shard")?;
                let shard = u8::from_str_radix(shard_hex, 16).map_err(|e| {
                    ProxError::corrupt("store manifest", format!("bad shard '{shard_hex}': {e}"))
                })?;
                segments.push(SegInfo {
                    shard,
                    file: manifest_str(item, "file")?.to_string(),
                    frames: manifest_u64(item, "frames")?,
                    payload_bytes: manifest_u64(item, "payload_bytes")?,
                    file_bytes: manifest_u64(item, "file_bytes")?,
                });
            }
        }
        _ => {
            return Err(ProxError::corrupt(
                "store manifest",
                "field 'segments' is not an array",
            ))
        }
    }
    Ok(StoreInfo {
        agg: agg_from_name(manifest_str(&j, "agg")?)?,
        logical: manifest_u64(counts, "logical")?,
        unique: manifest_u64(counts, "unique")?,
        log_entries: manifest_u64(counts, "log_entries")?,
        annotations: manifest_u64(counts, "annotations")?,
        payload_bytes: manifest_u64(counts, "payload_bytes")?,
        log_checksum,
        segments,
    })
}

/// How far a scan got before returning.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanOutcome {
    /// Logical expressions delivered (multiplicities included).
    pub logical_seen: u64,
    /// Log records consumed.
    pub records_seen: u64,
    /// `Some` when the budget interrupted the scan (anytime partial).
    pub stopped: Option<BudgetStop>,
}

/// An open store: manifest + annotation table + offset indexes in
/// memory, frame data paged in on demand.
pub struct SegmentStore {
    dir: PathBuf,
    info: StoreInfo,
    anns: AnnStore,
    files: BTreeMap<u8, File>,
    index: BTreeMap<u64, (u8, u64, u32)>,
    cache: PageCache,
    bytes_read: u64,
}

impl SegmentStore {
    /// Open a store with the default page size and cache ceiling.
    pub fn open(dir: &Path) -> Result<SegmentStore, ProxError> {
        SegmentStore::open_with(dir, DEFAULT_PAGE_BYTES, DEFAULT_CACHE_BYTES)
    }

    /// Open a store with an explicit page size and page-cache ceiling
    /// (bytes). Only indexes are loaded eagerly.
    pub fn open_with(
        dir: &Path,
        page_bytes: usize,
        cache_bytes: usize,
    ) -> Result<SegmentStore, ProxError> {
        let info = read_info(dir)?;
        let ann_path = dir.join(ANNS_FILE);
        let mut ann_bytes = std::fs::read(&ann_path)
            .map_err(|e| ProxError::io(format!("read {}", ann_path.display()), &e))?;
        BYTES_READ.add(ann_bytes.len() as u64);
        fault::corrupt_bytes(&mut ann_bytes);
        let anns = decode_annstore(&ann_bytes)?;
        if anns.len() as u64 != info.annotations {
            return Err(ProxError::corrupt(
                "store manifest",
                format!(
                    "manifest says {} annotations, anns.bin holds {}",
                    info.annotations,
                    anns.len()
                ),
            ));
        }
        let mut files = BTreeMap::new();
        let mut index = BTreeMap::new();
        let mut bytes_read = ann_bytes.len() as u64;
        for seg in &info.segments {
            let path = dir.join(&seg.file);
            let mut file = File::open(&path)
                .map_err(|e| ProxError::io(format!("open {}", path.display()), &e))?;
            let read = load_segment_index(&mut file, seg.shard, &mut index)?;
            bytes_read += read;
            files.insert(seg.shard, file);
        }
        if index.len() as u64 != info.unique {
            return Err(ProxError::corrupt(
                "store manifest",
                format!(
                    "manifest says {} unique frames, indexes hold {}",
                    info.unique,
                    index.len()
                ),
            ));
        }
        Ok(SegmentStore {
            dir: dir.to_path_buf(),
            info,
            anns,
            files,
            index,
            cache: PageCache::new(page_bytes, cache_bytes),
            bytes_read,
        })
    }

    pub fn info(&self) -> &StoreInfo {
        &self.info
    }

    pub fn anns(&self) -> &AnnStore {
        &self.anns
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    fn load_page(&mut self, shard: u8, page_start: u64) -> Result<Vec<u8>, ProxError> {
        let file = self.files.get_mut(&shard).ok_or_else(|| {
            ProxError::corrupt(
                "segment read",
                format!("no open file for shard {shard:02x}"),
            )
        })?;
        let page_bytes = self.cache.page_bytes();
        file.seek(SeekFrom::Start(page_start))
            .map_err(|e| ProxError::io(format!("seek {}", segment_file(shard)), &e))?;
        let mut buf = vec![0u8; page_bytes];
        let mut filled = 0;
        while filled < page_bytes {
            let n = file
                .read(&mut buf[filled..])
                .map_err(|e| ProxError::io(format!("read {}", segment_file(shard)), &e))?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf.truncate(filled);
        BYTES_READ.add(filled as u64);
        self.bytes_read += filled as u64;
        Ok(buf)
    }

    /// Assemble `len` bytes starting at `offset` in `shard`, going
    /// through the page cache.
    fn read_range(&mut self, shard: u8, offset: u64, len: usize) -> Result<Vec<u8>, ProxError> {
        let mut out = Vec::with_capacity(len);
        let page_bytes = self.cache.page_bytes() as u64;
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let page_no = pos / page_bytes;
            let page_start = page_no * page_bytes;
            let within = (pos - page_start) as usize;
            let want = (end - pos) as usize;
            let key = PageKey {
                shard,
                page: page_no,
            };
            let mut taken = None;
            if let Some(bytes) = self.cache.get(key) {
                let avail = bytes.len().saturating_sub(within);
                let take = want.min(avail);
                out.extend_from_slice(&bytes[within..within + take]);
                taken = Some(take);
            }
            let take = match taken {
                Some(t) => t,
                None => {
                    let page = self.load_page(shard, page_start)?;
                    let bytes = self.cache.insert(key, page);
                    let avail = bytes.len().saturating_sub(within);
                    let take = want.min(avail);
                    out.extend_from_slice(&bytes[within..within + take]);
                    take
                }
            };
            if take == 0 {
                return Err(ProxError::corrupt(
                    "segment read",
                    format!(
                        "{}: range {offset}+{len} runs past end of file",
                        segment_file(shard)
                    ),
                ));
            }
            pos += take as u64;
        }
        Ok(out)
    }

    /// Fetch and checksum-verify one frame payload by content address.
    pub fn read_frame(&mut self, fp: u64) -> Result<Vec<u8>, ProxError> {
        let (shard, offset, len) = *self.index.get(&fp).ok_or_else(|| {
            ProxError::corrupt(
                "segment read",
                format!("log references unknown fingerprint {fp:016x}"),
            )
        })?;
        let frame = self.read_range(shard, offset, 4 + len as usize + 8)?;
        let corrupt = |detail: String| {
            ProxError::corrupt(
                "segment frame",
                format!("{} frame {fp:016x}: {detail}", segment_file(shard)),
            )
        };
        if frame.len() != 4 + len as usize + 8 {
            return Err(corrupt(format!("short read ({} bytes)", frame.len())));
        }
        let mut c = [0u8; 4];
        c.copy_from_slice(&frame[..4]);
        let declared = u32::from_le_bytes(c);
        if declared != len {
            return Err(corrupt(format!(
                "index says {len} bytes, frame header says {declared}"
            )));
        }
        let mut payload = frame[4..4 + len as usize].to_vec();
        // Fault-injection hook: `PROX_FAULT=corrupt` flips bits here and
        // must surface as a typed checksum error, never a panic.
        fault::corrupt_bytes(&mut payload);
        let mut a = [0u8; 8];
        a.copy_from_slice(&frame[4 + len as usize..]);
        let want = u64::from_le_bytes(a);
        let got = crate::fp::fnv64(&payload);
        if got != want {
            return Err(corrupt(format!(
                "payload checksum mismatch (stored {want:016x}, computed {got:016x})"
            )));
        }
        Ok(payload)
    }

    /// Decode one entry by content address.
    pub fn read_entry(&mut self, fp: u64) -> Result<(AnnId, Tensor), ProxError> {
        let payload = self.read_frame(fp)?;
        decode_entry(&payload, self.anns.len())
    }

    fn open_log(&self) -> Result<(File, u64), ProxError> {
        let path = self.dir.join(LOG_FILE);
        let mut file =
            File::open(&path).map_err(|e| ProxError::io(format!("open {}", path.display()), &e))?;
        let len = file
            .metadata()
            .map_err(|e| ProxError::io(format!("stat {}", path.display()), &e))?
            .len();
        let corrupt =
            |detail: String| ProxError::corrupt("store log", format!("{LOG_FILE}: {detail}"));
        let header_and_footer = (LOG_MAGIC.len() + FOOTER_BYTES) as u64;
        if len < header_and_footer {
            return Err(corrupt(format!("file too short ({len} bytes)")));
        }
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)
            .map_err(|e| ProxError::io("read log magic", &e))?;
        if &magic != LOG_MAGIC {
            return Err(corrupt("bad header magic".into()));
        }
        let body = len - header_and_footer;
        if !body.is_multiple_of(LOG_ENTRY_BYTES as u64) {
            return Err(corrupt(format!(
                "record region is {body} bytes, not a multiple of {LOG_ENTRY_BYTES}"
            )));
        }
        let records = body / LOG_ENTRY_BYTES as u64;
        if records != self.info.log_entries {
            return Err(corrupt(format!(
                "manifest says {} records, file holds {records}",
                self.info.log_entries
            )));
        }
        Ok((file, records))
    }

    /// Stream the logical log, delivering `(object, tensor, count)` for
    /// every run-length record. Polls the budget session once per
    /// record — i.e. before every page load — and returns the partial
    /// outcome when the budget trips (anytime contract). The record
    /// stream's running checksum is verified when the scan completes.
    pub fn scan(
        &mut self,
        session: &mut BudgetSession,
        f: &mut dyn FnMut(AnnId, Tensor, u64) -> Result<(), ProxError>,
    ) -> Result<ScanOutcome, ProxError> {
        let (file, records) = self.open_log()?;
        let mut reader = std::io::BufReader::new(file);
        let mut outcome = ScanOutcome::default();
        let mut checksum = FNV_OFFSET;
        let mut rec = [0u8; LOG_ENTRY_BYTES];
        for _ in 0..records {
            if let Err(stop) = session.check() {
                outcome.stopped = Some(stop);
                return Ok(outcome);
            }
            if let Err(stop) = session.note_step() {
                outcome.stopped = Some(stop);
                return Ok(outcome);
            }
            reader
                .read_exact(&mut rec)
                .map_err(|e| ProxError::io("read log record", &e))?;
            BYTES_READ.add(LOG_ENTRY_BYTES as u64);
            self.bytes_read += LOG_ENTRY_BYTES as u64;
            checksum = fnv64_update(checksum, &rec);
            let mut a = [0u8; 8];
            a.copy_from_slice(&rec[..8]);
            let fp = u64::from_le_bytes(a);
            a.copy_from_slice(&rec[8..]);
            let count = u64::from_le_bytes(a);
            let (object, tensor) = self.read_entry(fp)?;
            f(object, tensor, count)?;
            outcome.records_seen += 1;
            outcome.logical_seen += count;
        }
        if checksum != self.info.log_checksum {
            return Err(ProxError::corrupt(
                "store log",
                format!(
                    "record checksum mismatch: manifest {:016x}, computed {checksum:016x}",
                    self.info.log_checksum
                ),
            ));
        }
        Ok(outcome)
    }

    /// Fold the whole store into one in-memory [`ProvExpr`]. Duplicate
    /// fingerprints are *not* re-read or re-decoded: each unique frame
    /// is materialized once and its logical multiplicity folded into the
    /// aggregation value, so live memory is proportional to the number
    /// of unique frames, never to the logical size of the store.
    pub fn collect(
        &mut self,
        session: &mut BudgetSession,
    ) -> Result<(ProvExpr, ScanOutcome), ProxError> {
        let (file, records) = self.open_log()?;
        let mut reader = std::io::BufReader::new(file);
        let mut outcome = ScanOutcome::default();
        let mut checksum = FNV_OFFSET;
        let mut rec = [0u8; LOG_ENTRY_BYTES];
        let mut fold: BTreeMap<u64, (AnnId, Tensor, u64)> = BTreeMap::new();
        for _ in 0..records {
            let stopped = match session.check() {
                Err(stop) => Some(stop),
                Ok(()) => session.note_step().err(),
            };
            if let Some(stop) = stopped {
                outcome.stopped = Some(stop);
                return Ok((fold_to_expr(self.info.agg, fold), outcome));
            }
            reader
                .read_exact(&mut rec)
                .map_err(|e| ProxError::io("read log record", &e))?;
            BYTES_READ.add(LOG_ENTRY_BYTES as u64);
            self.bytes_read += LOG_ENTRY_BYTES as u64;
            checksum = fnv64_update(checksum, &rec);
            let mut a = [0u8; 8];
            a.copy_from_slice(&rec[..8]);
            let fp = u64::from_le_bytes(a);
            a.copy_from_slice(&rec[8..]);
            let count = u64::from_le_bytes(a);
            match fold.get_mut(&fp) {
                Some((_, _, n)) => *n += count,
                None => {
                    let (object, tensor) = self.read_entry(fp)?;
                    fold.insert(fp, (object, tensor, count));
                }
            }
            outcome.records_seen += 1;
            outcome.logical_seen += count;
        }
        if checksum != self.info.log_checksum {
            return Err(ProxError::corrupt(
                "store log",
                format!(
                    "record checksum mismatch: manifest {:016x}, computed {checksum:016x}",
                    self.info.log_checksum
                ),
            ));
        }
        Ok((fold_to_expr(self.info.agg, fold), outcome))
    }

    /// Store + cache statistics as JSON (the shape `prox store stat`,
    /// `/metrics.json`, and the bench manifest all share).
    pub fn stats_json(&self) -> Json {
        let cache = self.cache_stats();
        let mut cj = Json::obj();
        cj.set("capacity_bytes", cache.capacity_bytes);
        cj.set("page_bytes", self.cache.page_bytes());
        cj.set("hits", cache.hits);
        cj.set("misses", cache.misses);
        cj.set("evictions", cache.evictions);
        cj.set("live_bytes", cache.live_bytes);
        cj.set("peak_bytes", cache.peak_bytes);
        cj.set("hit_rate", round6(cache.hit_rate()));

        let mut j = Json::obj();
        j.set("dir", self.dir.display().to_string());
        j.set("agg", self.info.agg.name());
        j.set("logical_expressions", self.info.logical);
        j.set("unique_frames", self.info.unique);
        j.set("dedup_ratio", round6(self.info.dedup_ratio()));
        j.set("log_entries", self.info.log_entries);
        j.set("annotations", self.info.annotations);
        j.set("segments", self.info.segments.len());
        j.set("payload_bytes", self.info.payload_bytes);
        j.set("bytes_read", self.bytes_read);
        j.set("page_cache", cj);
        j
    }
}

/// Round to 6 decimal places so ratios render identically across runs.
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

fn fold_to_expr(agg: AggKind, fold: BTreeMap<u64, (AnnId, Tensor, u64)>) -> ProvExpr {
    // Group by object id so the expression's entry order is the object
    // order, independent of fingerprint order.
    let mut by_object: BTreeMap<usize, Vec<(u64, Tensor, u64)>> = BTreeMap::new();
    for (fp, (object, tensor, n)) in fold {
        by_object
            .entry(object.index())
            .or_default()
            .push((fp, tensor, n));
    }
    let mut expr = ProvExpr::new(agg);
    for (object_ix, tensors) in by_object {
        let object = AnnId::from_index(object_ix);
        for (_fp, mut tensor, n) in tensors {
            tensor.value = tensor.value.scaled(n, agg);
            expr.push(object, tensor);
        }
    }
    expr
}

impl StoreBackend for SegmentStore {
    fn agg_kind(&self) -> AggKind {
        self.info.agg
    }

    fn logical_len(&self) -> u64 {
        self.info.logical
    }

    fn for_each_entry(
        &mut self,
        session: &mut BudgetSession,
        f: &mut dyn FnMut(AnnId, Tensor, u64) -> Result<(), ProxError>,
    ) -> Result<Option<BudgetStop>, ProxError> {
        let outcome = self.scan(session, f)?;
        Ok(outcome.stopped)
    }

    fn collect(
        &mut self,
        session: &mut BudgetSession,
    ) -> Result<(ProvExpr, Option<BudgetStop>), ProxError> {
        let (expr, outcome) = SegmentStore::collect(self, session)?;
        Ok((expr, outcome.stopped))
    }
}

fn load_segment_index(
    file: &mut File,
    shard: u8,
    index: &mut BTreeMap<u64, (u8, u64, u32)>,
) -> Result<u64, ProxError> {
    let len = file
        .metadata()
        .map_err(|e| ProxError::io(format!("stat {}", segment_file(shard)), &e))?
        .len();
    let corrupt = |detail: String| {
        ProxError::corrupt(
            "segment index",
            format!("{}: {detail}", segment_file(shard)),
        )
    };
    if len < (SEG_MAGIC.len() + FOOTER_BYTES) as u64 {
        return Err(corrupt(format!("file too short ({len} bytes)")));
    }
    let io = |what: &str, e: &std::io::Error| {
        ProxError::io(format!("{what} {}", segment_file(shard)), e)
    };
    let mut magic = [0u8; 8];
    file.seek(SeekFrom::Start(0)).map_err(|e| io("seek", &e))?;
    file.read_exact(&mut magic).map_err(|e| io("read", &e))?;
    if &magic != SEG_MAGIC {
        return Err(corrupt("bad header magic".into()));
    }
    let mut tail = [0u8; FOOTER_BYTES];
    file.seek(SeekFrom::Start(len - FOOTER_BYTES as u64))
        .map_err(|e| io("seek", &e))?;
    file.read_exact(&mut tail).map_err(|e| io("read", &e))?;
    let (index_offset, want_sum) = parse_footer(&tail, len, shard)?;
    let index_len = (len - FOOTER_BYTES as u64 - index_offset) as usize;
    let mut index_bytes = vec![0u8; index_len];
    file.seek(SeekFrom::Start(index_offset))
        .map_err(|e| io("seek", &e))?;
    file.read_exact(&mut index_bytes)
        .map_err(|e| io("read", &e))?;
    let read = (magic.len() + tail.len() + index_len) as u64;
    BYTES_READ.add(read);
    for e in parse_index_region(&index_bytes, want_sum, index_offset, shard)? {
        if index.insert(e.fp, (shard, e.offset, e.len)).is_some() {
            return Err(corrupt(format!("duplicate fingerprint {:016x}", e.fp)));
        }
    }
    Ok(read)
}
