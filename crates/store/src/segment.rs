//! Append-only segment files.
//!
//! Layout of `seg-XX.seg` (all integers little-endian):
//!
//! ```text
//! "PROXSEG1"                                      8-byte magic
//! frame*:   [u32 payload_len][payload][u64 fnv(payload)]
//! index:    [u32 n] then n × [u64 fp][u64 offset][u32 payload_len]
//! footer:   [u64 index_offset][u64 fnv(index bytes)]["PROXEND1"]
//! ```
//!
//! `offset` addresses the frame's length prefix from the start of the
//! file. The index is sorted by fingerprint, written once at close, and
//! checksummed in the footer; each frame additionally carries its own
//! payload checksum, so corruption is detected at frame granularity.
//! Crash safety is the append-only kind: a segment without a valid
//! footer is an unfinished write and is rejected as a whole.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use prox_robust::ProxError;

use crate::codec::{END_MAGIC, MAX_FRAME_BYTES};
use crate::fp::fnv64;

/// Magic prefix of every segment file.
pub const SEG_MAGIC: &[u8; 8] = b"PROXSEG1";
/// Fixed footer size: index offset, index checksum, end magic.
pub const FOOTER_BYTES: usize = 24;
/// Bytes per frame in the offset index.
pub const INDEX_ENTRY_BYTES: usize = 20;

/// File name of a shard's segment.
pub fn segment_file(shard: u8) -> String {
    format!("seg-{shard:02x}.seg")
}

/// One sorted index entry: where a fingerprint's frame lives.
#[derive(Clone, Copy, Debug)]
pub struct IndexEntry {
    pub fp: u64,
    pub offset: u64,
    pub len: u32,
}

/// Summary of a finished segment, recorded in the store manifest.
#[derive(Clone, Debug)]
pub struct SegmentMeta {
    pub shard: u8,
    pub frames: u64,
    /// Total payload bytes (pre-framing).
    pub payload_bytes: u64,
    /// Final file size including index and footer.
    pub file_bytes: u64,
}

/// Streaming writer for one shard. Frames go straight to a `BufWriter`;
/// only the (fingerprint → offset) index is buffered until close.
pub struct SegmentWriter {
    shard: u8,
    path: PathBuf,
    out: BufWriter<File>,
    offset: u64,
    payload_bytes: u64,
    index: Vec<IndexEntry>,
}

impl SegmentWriter {
    pub fn create(dir: &Path, shard: u8) -> Result<SegmentWriter, ProxError> {
        let path = dir.join(segment_file(shard));
        let file = File::create(&path)
            .map_err(|e| ProxError::io(format!("create segment {}", path.display()), &e))?;
        let mut out = BufWriter::new(file);
        out.write_all(SEG_MAGIC)
            .map_err(|e| ProxError::io("write segment magic", &e))?;
        Ok(SegmentWriter {
            shard,
            path,
            out,
            offset: SEG_MAGIC.len() as u64,
            payload_bytes: 0,
            index: Vec::new(),
        })
    }

    /// Append one frame; returns the entry recorded in the index.
    pub fn append(&mut self, fp: u64, payload: &[u8]) -> Result<IndexEntry, ProxError> {
        if payload.len() > MAX_FRAME_BYTES {
            return Err(ProxError::internal(format!(
                "frame payload {} bytes exceeds cap {MAX_FRAME_BYTES}",
                payload.len()
            )));
        }
        let entry = IndexEntry {
            fp,
            offset: self.offset,
            len: payload.len() as u32,
        };
        let checksum = fnv64(payload);
        let io = |e: &std::io::Error| ProxError::io("append segment frame", e);
        self.out
            .write_all(&(payload.len() as u32).to_le_bytes())
            .map_err(|e| io(&e))?;
        self.out.write_all(payload).map_err(|e| io(&e))?;
        self.out
            .write_all(&checksum.to_le_bytes())
            .map_err(|e| io(&e))?;
        self.offset += 4 + payload.len() as u64 + 8;
        self.payload_bytes += payload.len() as u64;
        self.index.push(entry);
        Ok(entry)
    }

    pub fn frames(&self) -> u64 {
        self.index.len() as u64
    }

    /// Write the sorted index and footer, flush, and return the meta.
    pub fn finish(mut self) -> Result<SegmentMeta, ProxError> {
        self.index.sort_by_key(|e| (e.fp, e.offset));
        let index_offset = self.offset;
        let mut index_bytes = Vec::with_capacity(4 + self.index.len() * INDEX_ENTRY_BYTES);
        index_bytes.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for e in &self.index {
            index_bytes.extend_from_slice(&e.fp.to_le_bytes());
            index_bytes.extend_from_slice(&e.offset.to_le_bytes());
            index_bytes.extend_from_slice(&e.len.to_le_bytes());
        }
        let io = |e: &std::io::Error| ProxError::io("finish segment", e);
        self.out.write_all(&index_bytes).map_err(|e| io(&e))?;
        self.out
            .write_all(&index_offset.to_le_bytes())
            .map_err(|e| io(&e))?;
        self.out
            .write_all(&fnv64(&index_bytes).to_le_bytes())
            .map_err(|e| io(&e))?;
        self.out.write_all(END_MAGIC).map_err(|e| io(&e))?;
        self.out
            .flush()
            .map_err(|e| ProxError::io(format!("flush segment {}", self.path.display()), &e))?;
        let file_bytes = index_offset + index_bytes.len() as u64 + FOOTER_BYTES as u64;
        Ok(SegmentMeta {
            shard: self.shard,
            frames: self.index.len() as u64,
            payload_bytes: self.payload_bytes,
            file_bytes,
        })
    }
}

/// Parse a segment footer (its final [`FOOTER_BYTES`] bytes) given the
/// file's total length. Returns `(index_offset, index_checksum)`.
pub fn parse_footer(tail: &[u8], file_len: u64, shard: u8) -> Result<(u64, u64), ProxError> {
    let corrupt = |detail: String| {
        ProxError::corrupt(
            "segment footer",
            format!("{}: {detail}", segment_file(shard)),
        )
    };
    if file_len < (SEG_MAGIC.len() + FOOTER_BYTES) as u64 || tail.len() != FOOTER_BYTES {
        return Err(corrupt(format!("file too short ({file_len} bytes)")));
    }
    if &tail[16..] != END_MAGIC {
        return Err(corrupt("bad end magic (unfinished write?)".into()));
    }
    let mut a = [0u8; 8];
    a.copy_from_slice(&tail[..8]);
    let index_offset = u64::from_le_bytes(a);
    a.copy_from_slice(&tail[8..16]);
    let want_sum = u64::from_le_bytes(a);
    let foot = file_len - FOOTER_BYTES as u64;
    if index_offset < SEG_MAGIC.len() as u64 || index_offset > foot {
        return Err(corrupt(format!("index offset {index_offset} out of range")));
    }
    Ok((index_offset, want_sum))
}

/// Checksum and parse the index region (everything between
/// `index_offset` and the footer). Frame extents are validated against
/// the data region `[8, index_offset)`.
pub fn parse_index_region(
    index_bytes: &[u8],
    want_sum: u64,
    index_offset: u64,
    shard: u8,
) -> Result<Vec<IndexEntry>, ProxError> {
    let corrupt = |detail: String| {
        ProxError::corrupt(
            "segment index",
            format!("{}: {detail}", segment_file(shard)),
        )
    };
    let got_sum = fnv64(index_bytes);
    if got_sum != want_sum {
        return Err(corrupt(format!(
            "index checksum mismatch: stored {want_sum:016x}, computed {got_sum:016x}"
        )));
    }
    if index_bytes.len() < 4 {
        return Err(corrupt("index shorter than its count field".into()));
    }
    let mut c = [0u8; 4];
    c.copy_from_slice(&index_bytes[..4]);
    let n = u32::from_le_bytes(c) as usize;
    if index_bytes.len() != 4 + n * INDEX_ENTRY_BYTES {
        return Err(corrupt(format!(
            "index declares {n} entries but holds {} bytes",
            index_bytes.len() - 4
        )));
    }
    let mut a = [0u8; 8];
    let mut entries = Vec::with_capacity(n);
    let mut pos = 4;
    for _ in 0..n {
        a.copy_from_slice(&index_bytes[pos..pos + 8]);
        let fp = u64::from_le_bytes(a);
        a.copy_from_slice(&index_bytes[pos + 8..pos + 16]);
        let offset = u64::from_le_bytes(a);
        c.copy_from_slice(&index_bytes[pos + 16..pos + 20]);
        let len = u32::from_le_bytes(c);
        let end = offset
            .checked_add(4 + len as u64 + 8)
            .ok_or_else(|| corrupt("frame extent overflow".into()))?;
        if offset < SEG_MAGIC.len() as u64 || end > index_offset {
            return Err(corrupt(format!(
                "frame at {offset} (+{len}) escapes data region [8, {index_offset})"
            )));
        }
        entries.push(IndexEntry { fp, offset, len });
        pos += INDEX_ENTRY_BYTES;
    }
    Ok(entries)
}

/// Parse and checksum-verify a segment's footer + index from its full
/// byte image. Returns the sorted index entries.
pub fn parse_index(bytes: &[u8], shard: u8) -> Result<Vec<IndexEntry>, ProxError> {
    let corrupt = |detail: String| {
        ProxError::corrupt(
            "segment index",
            format!("{}: {detail}", segment_file(shard)),
        )
    };
    if bytes.len() < SEG_MAGIC.len() + FOOTER_BYTES {
        return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
    }
    if &bytes[..SEG_MAGIC.len()] != SEG_MAGIC {
        return Err(corrupt("bad header magic".into()));
    }
    let foot = bytes.len() - FOOTER_BYTES;
    let (index_offset, want_sum) = parse_footer(&bytes[foot..], bytes.len() as u64, shard)?;
    parse_index_region(
        &bytes[index_offset as usize..foot],
        want_sum,
        index_offset,
        shard,
    )
}

/// Statistics from a full verification pass over one segment image.
#[derive(Clone, Copy, Debug, Default)]
pub struct SegmentCheck {
    pub frames: u64,
    pub payload_bytes: u64,
}

/// Walk every frame in a segment image, checking each payload checksum
/// against its stored value and each index entry against the frame it
/// points at. `bytes` is the full file (verification is an offline,
/// whole-file pass; the serving read path uses the page cache instead).
pub fn verify_segment(bytes: &[u8], shard: u8) -> Result<SegmentCheck, ProxError> {
    let entries = parse_index(bytes, shard)?;
    let corrupt = |detail: String| {
        ProxError::corrupt(
            "segment frame",
            format!("{} shard {shard:02x}: {detail}", segment_file(shard)),
        )
    };
    let mut check = SegmentCheck::default();
    for e in &entries {
        let off = e.offset as usize;
        let len_field = bytes
            .get(off..off + 4)
            .ok_or_else(|| corrupt(format!("truncated length prefix at {off}")))?;
        let mut c = [0u8; 4];
        c.copy_from_slice(len_field);
        let declared = u32::from_le_bytes(c);
        if declared != e.len {
            return Err(corrupt(format!(
                "frame {:016x}: index says {} bytes, frame header says {declared}",
                e.fp, e.len
            )));
        }
        let payload = bytes
            .get(off + 4..off + 4 + e.len as usize)
            .ok_or_else(|| corrupt(format!("truncated payload at {off}")))?;
        let sum_field = bytes
            .get(off + 4 + e.len as usize..off + 4 + e.len as usize + 8)
            .ok_or_else(|| corrupt(format!("truncated checksum at {off}")))?;
        let mut a = [0u8; 8];
        a.copy_from_slice(sum_field);
        let want = u64::from_le_bytes(a);
        let got = fnv64(payload);
        if got != want {
            return Err(corrupt(format!(
                "frame {:016x}: payload checksum mismatch (stored {want:016x}, computed {got:016x})",
                e.fp
            )));
        }
        if got != e.fp {
            return Err(corrupt(format!(
                "frame content hash {got:016x} does not match its address {:016x}",
                e.fp
            )));
        }
        check.frames += 1;
        check.payload_bytes += e.len as u64;
    }
    Ok(check)
}
