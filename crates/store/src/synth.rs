//! Deterministic synthetic MovieLens-shaped store generation.
//!
//! `prox store build` and the `store` bench experiment both build their
//! stores here: a DetRng-seeded population of users and movies (with
//! the MovieLens 1M attribute vocabulary), and a logical rating stream
//! whose *unique* frame count and *logical* expression count are chosen
//! independently — ten million logical ratings typically share on the
//! order of a hundred thousand distinct `(movie, user, rating)` frames,
//! which is exactly the sharing the content-addressed store exploits.

use std::path::Path;

use prox_provenance::{AggKind, AggValue, AnnStore, Polynomial, Tensor};
use prox_robust::fault::DetRng;
use prox_robust::ProxError;

use crate::builder::{StoreBuilder, StoreSummary};

/// Shape of a synthetic store.
#[derive(Clone, Copy, Debug)]
pub struct SynthSpec {
    pub users: u32,
    pub movies: u32,
    /// Distinct frames to draw (collisions dedup below this).
    pub unique_frames: u64,
    /// Logical expressions to spread across those frames.
    pub logical: u64,
    pub seed: u64,
}

impl SynthSpec {
    /// The bench-proof shape: MovieLens 1M population, ten million
    /// logical ratings over ~120k distinct frames.
    pub fn full(seed: u64) -> SynthSpec {
        SynthSpec {
            users: 6040,
            movies: 3952,
            unique_frames: 120_000,
            logical: 10_000_000,
            seed,
        }
    }

    /// A seconds-scale shape for tests and `--quick` runs.
    pub fn quick(seed: u64) -> SynthSpec {
        SynthSpec {
            users: 400,
            movies: 200,
            unique_frames: 4_000,
            logical: 200_000,
            seed,
        }
    }
}

const GENDERS: [&str; 2] = ["F", "M"];
const AGE_BANDS: [&str; 7] = ["1", "18", "25", "35", "45", "50", "56"];
const GENRES: [&str; 18] = [
    "Action",
    "Adventure",
    "Animation",
    "Children",
    "Comedy",
    "Crime",
    "Documentary",
    "Drama",
    "Fantasy",
    "FilmNoir",
    "Horror",
    "Musical",
    "Mystery",
    "Romance",
    "SciFi",
    "Thriller",
    "War",
    "Western",
];
const DECADES: [&str; 8] = [
    "1920s", "1930s", "1940s", "1950s", "1960s", "1970s", "1980s", "1990s",
];

/// Build the annotation population: one base annotation per user and
/// per movie, attributed so `SharedAttribute` merge rules have
/// something to group on.
pub fn synth_annstore(spec: &SynthSpec) -> (AnnStore, u32) {
    let mut rng = DetRng::new(spec.seed ^ ANN_SEED_MIX);
    let mut anns = AnnStore::new();
    for u in 0..spec.users {
        let gender = GENDERS[rng.below(GENDERS.len())];
        let age = AGE_BANDS[rng.below(AGE_BANDS.len())];
        let occupation = format!("occ{}", rng.below(21));
        anns.add_base_with(
            &format!("u{u}"),
            "user",
            &[
                ("gender", gender),
                ("age", age),
                ("occupation", &occupation),
            ],
        );
    }
    for m in 0..spec.movies {
        let genre = GENRES[rng.below(GENRES.len())];
        let decade = DECADES[rng.below(DECADES.len())];
        anns.add_base_with(
            &format!("m{m}"),
            "movie",
            &[("genre", genre), ("decade", decade)],
        );
    }
    (anns, spec.users)
}

/// Mixed into the annotation-population RNG so it is decorrelated from
/// the rating stream drawn from the same user seed.
const ANN_SEED_MIX: u64 = 0x5707_e5ee_d000_0001;

/// What `build_synthetic` produced.
#[derive(Clone, Debug)]
pub struct SynthReport {
    pub summary: StoreSummary,
    pub users: u32,
    pub movies: u32,
    pub requested_unique: u64,
    pub requested_logical: u64,
    pub seed: u64,
}

/// Build a synthetic store at `dir`. Multiplicities are spread evenly
/// (the first `logical % unique` frames get one extra), so the logical
/// total is hit exactly and the layout is a pure function of the spec.
pub fn build_synthetic(dir: &Path, spec: &SynthSpec) -> Result<SynthReport, ProxError> {
    if spec.users == 0 || spec.movies == 0 || spec.unique_frames == 0 {
        return Err(ProxError::config(
            "synthetic store needs users, movies, and unique_frames all > 0",
        ));
    }
    if spec.logical < spec.unique_frames {
        return Err(ProxError::config(format!(
            "logical total {} below unique frame count {}",
            spec.logical, spec.unique_frames
        )));
    }
    let (anns, users) = synth_annstore(spec);
    let mut builder = StoreBuilder::create(dir, &anns, AggKind::Max)?;
    let mut rng = DetRng::new(spec.seed);
    let base = spec.logical / spec.unique_frames;
    let extra = spec.logical % spec.unique_frames;
    for i in 0..spec.unique_frames {
        let user = rng.below(users as usize);
        let movie = rng.below(spec.movies as usize);
        let rating = 0.5 * (1 + rng.below(10)) as f64;
        let user_ann = anns
            .by_name(&format!("u{user}"))
            .ok_or_else(|| ProxError::internal("synthetic user annotation missing"))?;
        let movie_ann = anns
            .by_name(&format!("m{movie}"))
            .ok_or_else(|| ProxError::internal("synthetic movie annotation missing"))?;
        let tensor = Tensor::new(Polynomial::var(user_ann), AggValue::single(rating));
        let n = base + u64::from(i < extra);
        builder.append(movie_ann, &tensor, n)?;
    }
    let summary = builder.finish()?;
    Ok(SynthReport {
        summary,
        users: spec.users,
        movies: spec.movies,
        requested_unique: spec.unique_frames,
        requested_logical: spec.logical,
        seed: spec.seed,
    })
}
