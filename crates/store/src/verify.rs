//! Offline store verification: `prox store verify <dir>`.
//!
//! A full pass over every file in the store directory: header and
//! footer magics, per-frame payload checksums, index checksums, the
//! logical log's running checksum, and cross-checks against the
//! manifest counts. All failures are typed [`ProxError::Corrupt`]
//! (exit code 2 at the CLI) — never panics.
//!
//! The read path runs through the fault-injection hooks: under
//! `PROX_FAULT=truncate` each file is cut short before checking, and
//! under `PROX_FAULT=corrupt` bits are flipped — CI uses this to assert
//! that injected damage is actually detected.

use std::collections::BTreeSet;
use std::path::Path;

use prox_obs::store_metrics::BYTES_READ;
use prox_obs::Json;
use prox_robust::{fault, ProxError};

use crate::builder::{ANNS_FILE, LOG_ENTRY_BYTES, LOG_FILE, LOG_MAGIC};
use crate::codec::{decode_annstore, END_MAGIC};
use crate::fp::fnv64_update;
use crate::reader::read_info;
use crate::segment::{parse_index, verify_segment, FOOTER_BYTES};

/// What a successful verification pass covered.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyReport {
    pub segments: u64,
    pub frames: u64,
    pub payload_bytes: u64,
    pub log_records: u64,
    pub logical: u64,
    pub annotations: u64,
    pub bytes_checked: u64,
}

impl VerifyReport {
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("status", "ok");
        j.set("segments", self.segments);
        j.set("frames", self.frames);
        j.set("payload_bytes", self.payload_bytes);
        j.set("log_records", self.log_records);
        j.set("logical", self.logical);
        j.set("annotations", self.annotations);
        j.set("bytes_checked", self.bytes_checked);
        j
    }
}

/// Read a store file fully, routing the bytes through the
/// fault-injection harness (truncation, then bit corruption).
fn read_file(dir: &Path, name: &str) -> Result<Vec<u8>, ProxError> {
    let path = dir.join(name);
    let mut bytes =
        std::fs::read(&path).map_err(|e| ProxError::io(format!("read {}", path.display()), &e))?;
    BYTES_READ.add(bytes.len() as u64);
    let keep = fault::truncate_keep(bytes.len());
    bytes.truncate(keep);
    fault::corrupt_bytes(&mut bytes);
    Ok(bytes)
}

/// Verify every file in a store directory. Returns the coverage report
/// or the first typed corruption found.
pub fn verify_store(dir: &Path) -> Result<VerifyReport, ProxError> {
    let info = read_info(dir)?;
    let mut report = VerifyReport {
        annotations: info.annotations,
        ..VerifyReport::default()
    };

    let ann_bytes = read_file(dir, ANNS_FILE)?;
    report.bytes_checked += ann_bytes.len() as u64;
    let anns = decode_annstore(&ann_bytes)?;
    if anns.len() as u64 != info.annotations {
        return Err(ProxError::corrupt(
            "store verify",
            format!(
                "manifest says {} annotations, anns.bin holds {}",
                info.annotations,
                anns.len()
            ),
        ));
    }

    let mut fps: BTreeSet<u64> = BTreeSet::new();
    for seg in &info.segments {
        let bytes = read_file(dir, &seg.file)?;
        report.bytes_checked += bytes.len() as u64;
        let check = verify_segment(&bytes, seg.shard)?;
        if check.frames != seg.frames {
            return Err(ProxError::corrupt(
                "store verify",
                format!(
                    "{}: manifest says {} frames, segment holds {}",
                    seg.file, seg.frames, check.frames
                ),
            ));
        }
        for e in parse_index(&bytes, seg.shard)? {
            fps.insert(e.fp);
        }
        report.segments += 1;
        report.frames += check.frames;
        report.payload_bytes += check.payload_bytes;
    }
    if report.frames != info.unique {
        return Err(ProxError::corrupt(
            "store verify",
            format!(
                "manifest says {} unique frames, segments hold {}",
                info.unique, report.frames
            ),
        ));
    }

    let log = read_file(dir, LOG_FILE)?;
    report.bytes_checked += log.len() as u64;
    let corrupt = |detail: String| ProxError::corrupt("store log", format!("{LOG_FILE}: {detail}"));
    let overhead = LOG_MAGIC.len() + FOOTER_BYTES;
    if log.len() < overhead {
        return Err(corrupt(format!("file too short ({} bytes)", log.len())));
    }
    if &log[..LOG_MAGIC.len()] != LOG_MAGIC {
        return Err(corrupt("bad header magic".into()));
    }
    let foot = log.len() - FOOTER_BYTES;
    if &log[foot + 16..] != END_MAGIC {
        return Err(corrupt("bad end magic (unfinished write?)".into()));
    }
    let body = &log[LOG_MAGIC.len()..foot];
    if body.len() % LOG_ENTRY_BYTES != 0 {
        return Err(corrupt(format!(
            "record region is {} bytes, not a multiple of {LOG_ENTRY_BYTES}",
            body.len()
        )));
    }
    let mut a = [0u8; 8];
    a.copy_from_slice(&log[foot..foot + 8]);
    let declared_records = u64::from_le_bytes(a);
    a.copy_from_slice(&log[foot + 8..foot + 16]);
    let declared_sum = u64::from_le_bytes(a);
    let records = (body.len() / LOG_ENTRY_BYTES) as u64;
    if records != declared_records {
        return Err(corrupt(format!(
            "footer says {declared_records} records, file holds {records}"
        )));
    }
    if records != info.log_entries {
        return Err(corrupt(format!(
            "manifest says {} records, file holds {records}",
            info.log_entries
        )));
    }
    let mut checksum = crate::fp::FNV_OFFSET;
    let mut logical = 0u64;
    for rec in body.chunks_exact(LOG_ENTRY_BYTES) {
        checksum = fnv64_update(checksum, rec);
        a.copy_from_slice(&rec[..8]);
        let fp = u64::from_le_bytes(a);
        a.copy_from_slice(&rec[8..]);
        logical += u64::from_le_bytes(a);
        if !fps.contains(&fp) {
            return Err(corrupt(format!(
                "record references fingerprint {fp:016x} missing from every segment"
            )));
        }
    }
    if checksum != declared_sum {
        return Err(corrupt(format!(
            "record checksum mismatch: footer {declared_sum:016x}, computed {checksum:016x}"
        )));
    }
    if checksum != info.log_checksum {
        return Err(corrupt(format!(
            "record checksum mismatch: manifest {:016x}, computed {checksum:016x}",
            info.log_checksum
        )));
    }
    if logical != info.logical {
        return Err(corrupt(format!(
            "manifest says {} logical expressions, log sums to {logical}",
            info.logical
        )));
    }
    report.log_records = records;
    report.logical = logical;
    Ok(report)
}
