//! Property tests for the store's binary framing and file formats.
//!
//! Random cases come from the workspace's deterministic splitmix64
//! generator ([`prox_robust::fault::DetRng`]), same discipline as the
//! provenance property suite: every failure replays from its fixed seed
//! and the harness runs identically offline.
//!
//! The properties: encode→decode is the identity on canonical entries;
//! truncated frames and checksum-damaged blobs are typed
//! [`prox_robust::ProxError`]s — never panics; a `PROX_FAULT=corrupt`
//! read path degrades to typed errors; and same-seed synthetic builds
//! are byte-identical on disk.

use std::path::PathBuf;

use prox_provenance::{AggValue, AnnId, CmpOp, Guard, Monomial, Polynomial, Tensor};
use prox_robust::fault::{DetRng, FaultGuard};
use prox_robust::{ErrorKind, ExecutionBudget};
use prox_store::codec::entry_fingerprint;
use prox_store::{
    build_synthetic, decode_annstore, decode_entry, encode_annstore, encode_entry, fnv64,
    verify_store, SegmentStore, SynthSpec,
};

/// Cases per property.
const CASES: usize = 64;
/// Annotation universe for random entries (also the decoder bound).
const MAX_ANN: usize = 32;

const OPS: [CmpOp; 6] = [
    CmpOp::Gt,
    CmpOp::Ge,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Eq,
    CmpOp::Ne,
];

fn ann(rng: &mut DetRng) -> AnnId {
    AnnId::from_index(rng.below(MAX_ANN))
}

/// A random canonical polynomial: 1–4 terms of degree 0–3, coefficients
/// 1–5. Built through `from_terms` so it is already in the normal form
/// the decoder produces.
fn random_poly(rng: &mut DetRng) -> Polynomial {
    let n_terms = rng.below(4) + 1;
    Polynomial::from_terms((0..n_terms).map(|_| {
        let degree = rng.below(4);
        let factors: Vec<AnnId> = (0..degree).map(|_| ann(rng)).collect();
        (Monomial::from_factors(factors), rng.next_u64() % 5 + 1)
    }))
}

/// A value with two decimal digits — round-trips bit-exactly.
fn random_value(rng: &mut DetRng) -> f64 {
    (rng.next_u64() % 10_000) as f64 / 100.0
}

fn random_guard(rng: &mut DetRng) -> Guard {
    let n_lhs = rng.below(2) + 1;
    Guard {
        lhs: (0..n_lhs)
            .map(|_| (random_poly(rng), random_value(rng)))
            .collect(),
        op: OPS[rng.below(OPS.len())],
        rhs: random_value(rng),
    }
}

/// A random entry: object id, canonical polynomial, 0–3 guards covering
/// every comparison op over the cases, and an aggregation value.
fn random_entry(rng: &mut DetRng) -> (AnnId, Tensor) {
    let object = ann(rng);
    let prov = random_poly(rng);
    let guards: Vec<Guard> = (0..rng.below(4)).map(|_| random_guard(rng)).collect();
    let value = AggValue::new(random_value(rng), rng.next_u64() % 7 + 1);
    let tensor = if guards.is_empty() {
        Tensor::new(prov, value)
    } else {
        Tensor::guarded(prov, guards, value)
    };
    (object, tensor)
}

/// A unique scratch dir under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prox-store-prop-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("scratch dir is removable");
    }
    dir
}

/// Encoding then decoding a canonical entry is the identity, and the
/// frame's content address is exactly the FNV of its bytes.
#[test]
fn entry_encode_decode_roundtrip() {
    let mut rng = DetRng::new(0x57_0123);
    for case in 0..CASES {
        let (object, tensor) = random_entry(&mut rng);
        let payload = encode_entry(object, &tensor);
        let (object2, tensor2) =
            decode_entry(&payload, MAX_ANN).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(object, object2, "case {case}: object survives");
        assert_eq!(tensor, tensor2, "case {case}: tensor survives");
        assert_eq!(
            entry_fingerprint(object, &tensor),
            fnv64(&payload),
            "case {case}: the content address is the FNV of the frame bytes"
        );
    }
}

/// Every strict prefix of a valid frame decodes to a typed error (the
/// payload is self-delimiting, so losing tail bytes is always caught) —
/// and never panics.
#[test]
fn truncated_frames_are_typed_errors() {
    let mut rng = DetRng::new(0x57_4444);
    for case in 0..16 {
        let (object, tensor) = random_entry(&mut rng);
        let payload = encode_entry(object, &tensor);
        for len in 0..payload.len() {
            let err =
                decode_entry(&payload[..len], MAX_ANN).expect_err("a strict prefix never decodes");
            assert_eq!(
                err.kind(),
                ErrorKind::Input,
                "case {case} prefix {len}: truncation is an input error: {err}"
            );
        }
    }
}

/// Single-bit damage to a frame payload either still decodes (the flip
/// landed in a value) or yields a typed input error — never a panic.
/// The segment layer's per-frame checksum is what catches the silent
/// decodes; this property pins down the codec's own behaviour.
#[test]
fn bitflipped_frames_never_panic() {
    let mut rng = DetRng::new(0x57_9999);
    for _ in 0..16 {
        let (object, tensor) = random_entry(&mut rng);
        let payload = encode_entry(object, &tensor);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut damaged = payload.clone();
                damaged[byte] ^= 1 << bit;
                match decode_entry(&damaged, MAX_ANN) {
                    Ok(_) => {} // flipped a value bit; the frame checksum layer catches these
                    Err(e) => assert_eq!(
                        e.kind(),
                        ErrorKind::Input,
                        "byte {byte} bit {bit}: corruption is an input error: {e}"
                    ),
                }
            }
        }
    }
}

/// The annotation-store blob round-trips through its canonical encoding,
/// and its embedded checksum catches every single-bit flip and every
/// truncation with a typed error.
#[test]
fn annstore_blob_roundtrip_and_checksum() {
    let _clean = FaultGuard::disabled();
    let dir = scratch("anns");
    let spec = SynthSpec {
        users: 12,
        movies: 6,
        unique_frames: 60,
        logical: 600,
        seed: 5,
    };
    build_synthetic(&dir, &spec).expect("small build succeeds");
    let store = SegmentStore::open(&dir).expect("fresh store opens");
    let blob = encode_annstore(store.anns()).expect("base annotations encode");
    let decoded = decode_annstore(&blob).expect("canonical blob decodes");
    assert_eq!(
        encode_annstore(&decoded).expect("decoded store re-encodes"),
        blob,
        "decode is a section of encode"
    );

    for len in 0..blob.len() {
        let err = decode_annstore(&blob[..len]).expect_err("a strict prefix never decodes");
        assert_eq!(err.kind(), ErrorKind::Input, "truncation at {len}: {err}");
    }
    let mut rng = DetRng::new(0x57_AAAA);
    for _ in 0..256 {
        let byte = rng.below(blob.len());
        let bit = rng.below(8);
        let mut damaged = blob.clone();
        damaged[byte] ^= 1 << bit;
        let err =
            decode_annstore(&damaged).expect_err("the checksum catches every single-bit flip");
        assert_eq!(err.kind(), ErrorKind::Input, "flip {byte}.{bit}: {err}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under `PROX_FAULT=corrupt`, opening, folding, and verifying a store
/// degrade to typed input errors (or survive when the flip lands in a
/// value the checksums re-validate) — never panics, never silent trash.
#[test]
fn fault_corrupt_reads_degrade_to_typed_errors() {
    let dir = scratch("fault");
    {
        let _clean = FaultGuard::disabled();
        build_synthetic(&dir, &SynthSpec::quick(2016)).expect("clean build succeeds");
        verify_store(&dir).expect("clean store verifies");
    }
    for seed in [1u64, 2, 3, 42, 99] {
        let _g = FaultGuard::install(&format!("corrupt@0.02:{seed}")).expect("valid spec");
        match SegmentStore::open(&dir) {
            Ok(mut store) => {
                let budget = ExecutionBudget::unlimited();
                let mut session = budget.start();
                match store.collect(&mut session) {
                    Ok((expr, outcome)) => {
                        assert!(outcome.logical_seen > 0, "a full fold saw the log");
                        assert!(expr.size() > 0, "a full fold produced tensors");
                    }
                    Err(e) => assert_eq!(e.kind(), ErrorKind::Input, "fold: {e}"),
                }
            }
            Err(e) => assert_eq!(e.kind(), ErrorKind::Input, "open: {e}"),
        }
        match verify_store(&dir) {
            Ok(report) => assert!(report.frames > 0),
            Err(e) => assert_eq!(e.kind(), ErrorKind::Input, "verify: {e}"),
        }
    }
    let _clean = FaultGuard::disabled();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two same-seed synthetic builds are byte-identical file for file, and
/// the fold off either sees exactly the spec's logical stream.
#[test]
fn same_seed_builds_are_byte_identical() {
    let _clean = FaultGuard::disabled();
    let spec = SynthSpec {
        users: 30,
        movies: 15,
        unique_frames: 300,
        logical: 20_000,
        seed: 7,
    };
    let dir_a = scratch("det-a");
    let dir_b = scratch("det-b");
    build_synthetic(&dir_a, &spec).expect("build a succeeds");
    build_synthetic(&dir_b, &spec).expect("build b succeeds");

    let mut names: Vec<String> = std::fs::read_dir(&dir_a)
        .expect("store dir lists")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    names.sort();
    assert!(!names.is_empty(), "the build wrote files");
    for name in &names {
        let a = std::fs::read(dir_a.join(name)).expect("file a reads");
        let b = std::fs::read(dir_b.join(name)).expect("file b reads");
        assert_eq!(a, b, "{name}: same-seed builds are byte-identical");
    }

    let mut store = SegmentStore::open(&dir_a).expect("store opens");
    let budget = ExecutionBudget::unlimited();
    let mut session = budget.start();
    let (expr, outcome) = store.collect(&mut session).expect("fold succeeds");
    assert_eq!(outcome.logical_seen, spec.logical);
    assert!(outcome.stopped.is_none(), "an unlimited budget never trips");
    assert!(expr.num_objects() > 0);
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
