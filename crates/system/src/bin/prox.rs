//! The PROX CLI: a terminal rendition of the web UI's three views
//! (selection → summarization → summary/provisioning, §7.2).
//!
//! Usage:
//!   prox demo                 — scripted walkthrough (non-interactive)
//!   prox                      — interactive shell
//!
//! Interactive commands:
//! ```text
//!   search <needle>           — select movies by title substring
//!   genre <genre> [year]      — select movies by genre and year
//!   all                       — select every movie
//!   params                    — show the current summarization parameters
//!   set wdist|steps|tsize|tdist <value>
//!   summarize                 — run Algorithm 1 on the selection
//!   expr | groups             — summary subviews
//!   back | forward            — step through the algorithm
//!   insights                  — ranked group-vs-complement trends
//!   cancel <name> [...]       — provision: evaluate with annotations false
//!   cancelattr <attr>=<value> — provision: cancel an attribute value
//!   stats                     — print the observability registry snapshot
//!   quit
//! ```
//!
//! Observability: `--trace <path>` (or `PROX_TRACE=<path>`) writes a JSONL
//! span trace; either also enables the counters/spans behind `stats`.

use std::io::{self, BufRead, Write};

use prox_datasets::{MovieLens, MovieLensConfig};
use prox_system::evaluator::{evaluate_both, Assignment};
use prox_system::render;
use prox_system::selection::{select, Selected, Selection};
use prox_system::session::Session;
use prox_system::summarization::{summarize, SummarizationRequest};

struct App {
    data: MovieLens,
    request: SummarizationRequest,
    selected: Option<Selected>,
    session: Option<Session>,
}

impl App {
    fn new() -> Self {
        App {
            data: MovieLens::generate(MovieLensConfig {
                users: 40,
                movies: 8,
                ratings_per_user: 2,
                seed: 2016,
            }),
            request: SummarizationRequest::default(),
            selected: None,
            session: None,
        }
    }

    fn select(&mut self, selection: Selection) -> String {
        let sel = select(&mut self.data, &selection, self.request.aggregation);
        let view = render::selection_view(&sel.provenance, &self.data.store);
        self.selected = Some(sel);
        self.session = None;
        view
    }

    fn summarize(&mut self) -> String {
        let Some(sel) = &self.selected else {
            return "select provenance first (try: all)".to_owned();
        };
        match summarize(&mut self.data, sel, self.request.clone()) {
            Ok(out) => {
                let steps = out.result.history.len();
                let session = Session::new(out);
                let view = render::expression_view(&session, &self.data.store);
                self.session = Some(session);
                format!("ran {steps} steps\n{view}")
            }
            Err(e) => format!("error: {e}"),
        }
    }

    fn provision(&mut self, assignment: Assignment) -> String {
        let Some(session) = &self.session else {
            return "summarize first".to_owned();
        };
        let original = &session.summarized().original;
        let summary = session.expression();
        let (orig, summ) = evaluate_both(original, summary, &assignment, &self.data.store);
        format!(
            "On the ORIGINAL provenance:\n{}\nOn the SUMMARY (approximate):\n{}",
            render::evaluation_view(&orig),
            render::evaluation_view(&summ),
        )
    }

    fn dispatch(&mut self, line: &str) -> Option<String> {
        let mut parts = line.split_whitespace();
        let cmd = parts.next()?;
        let rest: Vec<&str> = parts.collect();
        Some(match cmd {
            "search" => self.select(Selection::Search(rest.join(" "))),
            "genre" => {
                let genre = rest.first().map(|s| s.to_string());
                let year = rest.get(1).and_then(|s| s.parse().ok());
                self.select(Selection::GenreYear { genre, year })
            }
            "all" => self.select(Selection::All),
            "params" => render::summarization_view(&self.request),
            "set" => match (rest.first(), rest.get(1)) {
                (Some(&"wdist"), Some(v)) => {
                    self.request.w_dist = v.parse().unwrap_or(self.request.w_dist);
                    format!("wDist = {}", self.request.w_dist)
                }
                (Some(&"steps"), Some(v)) => {
                    self.request.steps = v.parse().unwrap_or(self.request.steps);
                    format!("steps = {}", self.request.steps)
                }
                (Some(&"tsize"), Some(v)) => {
                    self.request.target_size = v.parse().unwrap_or(self.request.target_size);
                    format!("TARGET-SIZE = {}", self.request.target_size)
                }
                (Some(&"tdist"), Some(v)) => {
                    self.request.target_dist = v.parse().unwrap_or(self.request.target_dist);
                    format!("TARGET-DIST = {}", self.request.target_dist)
                }
                _ => "usage: set wdist|steps|tsize|tdist <value>".to_owned(),
            },
            "summarize" => self.summarize(),
            "expr" => match &self.session {
                Some(s) => render::expression_view(s, &self.data.store),
                None => "summarize first".to_owned(),
            },
            "groups" => match &self.session {
                Some(s) => render::groups_view(&s.groups(&self.data.store)),
                None => "summarize first".to_owned(),
            },
            "back" => match &mut self.session {
                Some(s) => {
                    s.back();
                    render::expression_view(s, &self.data.store)
                }
                None => "summarize first".to_owned(),
            },
            "forward" => match &mut self.session {
                Some(s) => {
                    s.forward();
                    render::expression_view(s, &self.data.store)
                }
                None => "summarize first".to_owned(),
            },
            "insights" => match &self.session {
                Some(sess) => {
                    let ins = prox_system::insights(sess.summarized(), &self.data.store);
                    if ins.is_empty() {
                        "no group trends detected".to_owned()
                    } else {
                        ins.iter()
                            .take(10)
                            .map(|i| format!("  {}", i.statement))
                            .collect::<Vec<_>>()
                            .join("\n")
                    }
                }
                None => "summarize first".to_owned(),
            },
            "cancel" => self.provision(Assignment::FalseAnnotations(
                rest.iter().map(|s| s.to_string()).collect(),
            )),
            "cancelattr" => {
                let pairs: Vec<(String, String)> = rest
                    .iter()
                    .filter_map(|s| s.split_once('=').map(|(a, v)| (a.to_owned(), v.to_owned())))
                    .collect();
                self.provision(Assignment::FalseAttributes(pairs))
            }
            "stats" => {
                if prox_obs::enabled() {
                    prox_obs::render_snapshot()
                } else {
                    "observability is off — run with --trace <path> or PROX_TRACE=1".to_owned()
                }
            }
            "help" => HELP.to_owned(),
            "quit" | "exit" => return None,
            other => format!("unknown command {other:?} — try `help`"),
        })
    }
}

const HELP: &str = "commands: search <s> | genre <g> [year] | all | params | \
set wdist|steps|tsize|tdist <v> | summarize | expr | groups | back | forward | \
cancel <names…> | cancelattr a=v | insights | stats | quit";

fn demo() {
    let mut app = App::new();
    let script = [
        "all",
        "params",
        "set wdist 0.7",
        "set steps 8",
        "summarize",
        "groups",
        "back",
        "forward",
        "cancelattr gender=M",
        "insights",
        "stats",
    ];
    for cmd in script {
        println!("prox> {cmd}");
        match app.dispatch(cmd) {
            Some(out) => println!("{out}"),
            None => break,
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--trace <path>` anywhere on the command line; PROX_TRACE also works.
    if let Some(ix) = args.iter().position(|a| a == "--trace") {
        if ix + 1 >= args.len() {
            eprintln!("--trace requires a path");
            std::process::exit(2);
        }
        let path = args.remove(ix + 1);
        args.remove(ix);
        if let Err(e) = prox_obs::install_sink(&path) {
            eprintln!("cannot open trace file {path}: {e}");
            std::process::exit(2);
        }
    }
    prox_obs::init_from_env();

    if args.first().map(String::as_str) == Some("demo") {
        demo();
        prox_obs::flush_sink();
        return;
    }
    println!("PROX — approximated summarization of data provenance");
    println!("{HELP}");
    let stdin = io::stdin();
    let mut app = App::new();
    loop {
        print!("prox> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match app.dispatch(line) {
            Some(out) => println!("{out}"),
            None => break,
        }
    }
    prox_obs::flush_sink();
}
