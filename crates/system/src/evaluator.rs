//! The evaluator (provisioning) service (§7.1): applies user-specified
//! assignments to a provenance expression and reports the per-movie
//! aggregated ratings together with the evaluation time in nanoseconds
//! (Figs 7.9–7.10).

use std::time::Instant;

use prox_obs::SpanTimer;
use prox_provenance::{AnnId, AnnStore, Mapping, Phi, ProvExpr, Valuation};

/// One provisioning evaluation (assignment → aggregated table).
static SPAN_EVALUATE: SpanTimer = SpanTimer::new("eval/evaluate");
/// φ-lifting a batch of valuations plus evaluating them (usage time).
static SPAN_PHI: SpanTimer = SpanTimer::new("eval/phi");

/// An assignment specified in the UI: either explicit false annotations or
/// false attribute values (cancel everything sharing them).
#[derive(Clone, Debug)]
pub enum Assignment {
    /// Cancel the named annotations.
    FalseAnnotations(Vec<String>),
    /// Cancel every annotation with any of the given `attr=value` pairs.
    FalseAttributes(Vec<(String, String)>),
}

/// One row of the evaluation-result table.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// Movie (or group) title.
    pub title: String,
    /// The aggregated rating under the assignment.
    pub aggregated: f64,
}

/// The evaluation result: the table plus the measured time.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// One row per provenance coordinate.
    pub rows: Vec<ResultRow>,
    /// Wall-clock evaluation time in nanoseconds (as the UI reports).
    pub eval_time_ns: u128,
}

/// Resolve an assignment to a concrete valuation over base annotations.
pub fn resolve_assignment(assignment: &Assignment, store: &AnnStore) -> Valuation {
    match assignment {
        Assignment::FalseAnnotations(names) => {
            let ids: Vec<AnnId> = names.iter().filter_map(|n| store.by_name(n)).collect();
            Valuation::cancel(&ids).labeled("user assignment")
        }
        Assignment::FalseAttributes(pairs) => {
            let mut cancelled = Vec::new();
            for (id, ann) in store.iter() {
                if ann.kind.is_summary() {
                    continue;
                }
                for (attr_name, value_name) in pairs {
                    let matches = ann.attrs.iter().any(|&(a, v)| {
                        store.attr_name(a) == attr_name && store.value_name(v) == value_name
                    });
                    if matches {
                        cancelled.push(id);
                        break;
                    }
                }
            }
            Valuation::cancel(&cancelled).labeled("user attribute assignment")
        }
    }
}

/// Evaluate an assignment on an expression. When the expression contains
/// summary annotations (i.e. it is a summary), the valuation is lifted
/// through φ = ∨ first — this is what makes provisioning on the summary
/// *approximate*.
pub fn evaluate(expr: &ProvExpr, assignment: &Assignment, store: &AnnStore) -> Evaluation {
    let _span = SPAN_EVALUATE.start();
    let base = resolve_assignment(assignment, store);
    // Lift to summary annotations present in the expression.
    let lifted = base.lift(&Mapping::identity(), Phi::Or, store);
    let start = Instant::now();
    let outcome = expr.eval(&lifted);
    let eval_time_ns = start.elapsed().as_nanos();
    let rows = outcome
        .coords()
        .iter()
        .map(|&(o, v)| ResultRow {
            title: store.name(o).to_owned(),
            aggregated: v.result(),
        })
        .collect();
    Evaluation { rows, eval_time_ns }
}

/// Evaluate the same assignment on original and summary, returning both
/// (the comparison behind the usage-time experiment and the UI's
/// approximate-provisioning demonstration).
pub fn evaluate_both(
    original: &ProvExpr,
    summary: &ProvExpr,
    assignment: &Assignment,
    store: &AnnStore,
) -> (Evaluation, Evaluation) {
    (
        evaluate(original, assignment, store),
        evaluate(summary, assignment, store),
    )
}

/// Time the evaluation of a batch of valuations on an expression; returns
/// total nanoseconds (the usage-time experiment's primitive).
pub fn time_valuations(expr: &ProvExpr, valuations: &[Valuation], store: &AnnStore) -> u128 {
    let _span = SPAN_PHI.start();
    let lifted: Vec<Valuation> = valuations
        .iter()
        .map(|v| v.lift(&Mapping::identity(), Phi::Or, store))
        .collect();
    let start = Instant::now();
    for v in &lifted {
        std::hint::black_box(expr.eval(v));
    }
    start.elapsed().as_nanos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::{AggKind, AggValue, Polynomial, Tensor};

    fn setup() -> (AnnStore, ProvExpr) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("UID1", "users", &[("gender", "M")]);
        let u2 = s.add_base_with("UID2", "users", &[("gender", "F")]);
        let m1 = s.add_base_with("Friday", "movies", &[]);
        let m2 = s.add_base_with("PartyGirl", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        p.push(m1, Tensor::new(Polynomial::var(u1), AggValue::single(5.0)));
        p.push(m1, Tensor::new(Polynomial::var(u2), AggValue::single(3.0)));
        p.push(m2, Tensor::new(Polynomial::var(u2), AggValue::single(4.0)));
        (s, p)
    }

    #[test]
    fn false_annotations_cancel_by_name() {
        let (s, p) = setup();
        let ev = evaluate(&p, &Assignment::FalseAnnotations(vec!["UID1".into()]), &s);
        assert_eq!(
            ev.rows[0],
            ResultRow {
                title: "Friday".into(),
                aggregated: 3.0
            }
        );
        assert_eq!(ev.rows[1].aggregated, 4.0);
    }

    #[test]
    fn false_attributes_cancel_by_value() {
        let (s, p) = setup();
        let ev = evaluate(
            &p,
            &Assignment::FalseAttributes(vec![("gender".into(), "F".into())]),
            &s,
        );
        assert_eq!(ev.rows[0].aggregated, 5.0);
        assert_eq!(ev.rows[1].aggregated, 0.0, "only rater cancelled");
    }

    #[test]
    fn summary_evaluation_is_approximate() {
        let (mut s, p) = setup();
        // Merge the two users; cancelling F no longer removes her rating.
        let dom = s.domain("users");
        let u1 = s.by_name("UID1").unwrap();
        let u2 = s.by_name("UID2").unwrap();
        let g = s.add_summary("AllUsers", dom, &[u1, u2]);
        let summary = p.map(&Mapping::group(&[u1, u2], g));
        let assignment = Assignment::FalseAttributes(vec![("gender".into(), "F".into())]);
        let (orig, summ) = evaluate_both(&p, &summary, &assignment, &s);
        assert_eq!(orig.rows[1].aggregated, 0.0);
        assert_eq!(summ.rows[1].aggregated, 4.0, "group survives via OR");
    }

    #[test]
    fn timing_is_reported() {
        let (s, p) = setup();
        let ev = evaluate(&p, &Assignment::FalseAnnotations(vec![]), &s);
        // Duration measured; zero is theoretically possible but the rows
        // must be complete regardless.
        assert_eq!(ev.rows.len(), 2);
        let t = time_valuations(&p, &[Valuation::all_true()], &s);
        let _ = (ev.eval_time_ns, t);
    }

    #[test]
    fn unknown_names_are_ignored() {
        let (s, p) = setup();
        let ev = evaluate(
            &p,
            &Assignment::FalseAnnotations(vec!["NoSuchUser".into()]),
            &s,
        );
        assert_eq!(ev.rows[0].aggregated, 5.0);
    }
}
