//! Trend insights from summaries — the introduction's motivating payoff:
//! "this compact representation will enable the user to see trends, for
//! example that women aged 20-25 have tended to rate a particular movie
//! more highly than men aged 20-25."
//!
//! Given a summarization result, this module compares each group's
//! contribution against its complement per movie and emits ranked,
//! human-readable trend statements.

use prox_provenance::{AnnId, AnnStore, ProvExpr, Valuation};

use crate::summarization::Summarized;

/// One detected trend.
#[derive(Clone, Debug)]
pub struct Insight {
    /// The group annotation the trend is about.
    pub group: AnnId,
    /// The object (movie) the trend concerns.
    pub object: AnnId,
    /// Aggregate when only the group's members contribute.
    pub group_value: f64,
    /// Aggregate when everyone *except* the group contributes.
    pub complement_value: f64,
    /// Human-readable statement.
    pub statement: String,
}

impl Insight {
    /// Absolute gap between the group and its complement.
    pub fn gap(&self) -> f64 {
        (self.group_value - self.complement_value).abs()
    }
}

/// Detect group-vs-complement trends across the summary's groups and the
/// original provenance. Returns insights sorted by descending gap.
pub fn insights(summarized: &Summarized, store: &AnnStore) -> Vec<Insight> {
    let original = &summarized.original;
    let mut out = Vec::new();
    for step in &summarized.result.history.steps {
        let group = step.target;
        let members = store.get(group).base_members().to_vec();
        if members.is_empty() {
            continue;
        }
        out.extend(group_insights(original, group, &members, store));
    }
    out.sort_by(|a, b| b.gap().total_cmp(&a.gap()));
    // Nested merges can produce near-identical statements (a group and its
    // superset with the same shared attributes); keep the strongest.
    // BTreeSet, not HashSet: insights are user-visible output (rule L2).
    let mut seen = std::collections::BTreeSet::new();
    out.retain(|i| seen.insert(i.statement.clone()));
    out
}

/// Trends for one explicit group of base annotations.
pub fn group_insights(
    original: &ProvExpr,
    group: AnnId,
    members: &[AnnId],
    store: &AnnStore,
) -> Vec<Insight> {
    // Only the group contributes: cancel every *other* user annotation
    // appearing in the expression (objects and non-user domains are left
    // alone — they are part of the query, not contributors).
    let contributors: Vec<AnnId> = original
        .annotations()
        .into_iter()
        .filter(|&a| store.get(a).domain == store.get(members[0]).domain)
        .collect();
    let others: Vec<AnnId> = contributors
        .iter()
        .copied()
        .filter(|a| !members.contains(a))
        .collect();
    let only_group = Valuation::cancel(&others);
    let only_others = Valuation::cancel(members);

    let group_vec = original.eval(&only_group);
    let other_vec = original.eval(&only_others);

    let descr = describe_group(group, store);
    let mut out = Vec::new();
    for &(object, gv) in group_vec.coords() {
        let g = gv.result();
        let o = other_vec.scalar_for(object).unwrap_or(0.0);
        if gv.is_empty() {
            continue; // the group did not touch this object
        }
        let movie = store.name(object);
        let relation = if g > o {
            "higher than"
        } else if g < o {
            "lower than"
        } else {
            "the same as"
        };
        out.push(Insight {
            group,
            object,
            group_value: g,
            complement_value: o,
            statement: format!("{descr} rated {movie} {g} — {relation} everyone else ({o})"),
        });
    }
    out
}

/// Describe a group by its shared attributes ("gender=F, age_range=25-34
/// users (3 members)"), falling back to the group name.
pub fn describe_group(group: AnnId, store: &AnnStore) -> String {
    let ann = store.get(group);
    let members = ann.base_members().len();
    if ann.attrs.is_empty() {
        format!("{} ({} members)", ann.name, members)
    } else {
        let attrs = ann
            .attrs
            .iter()
            .map(|&(a, v)| format!("{}={}", store.attr_name(a), store.value_name(v)))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{attrs} users ({members} members)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::{AggKind, AggValue, Polynomial, Tensor};

    fn setup() -> (AnnStore, ProvExpr, Vec<AnnId>, AnnId) {
        let mut s = AnnStore::new();
        let u1 = s.add_base_with("U1", "users", &[("gender", "F")]);
        let u2 = s.add_base_with("U2", "users", &[("gender", "F")]);
        let u3 = s.add_base_with("U3", "users", &[("gender", "M")]);
        let m = s.add_base_with("MatchPoint", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        for (u, r) in [(u1, 5.0), (u2, 4.0), (u3, 2.0)] {
            p.push(m, Tensor::new(Polynomial::var(u), AggValue::single(r)));
        }
        let dom = s.domain("users");
        let g = s.add_summary("F", dom, &[u1, u2]);
        (s, p, vec![u1, u2, u3], g)
    }

    #[test]
    fn group_vs_complement_gap() {
        let (s, p, _, g) = setup();
        let members = s.base_of(g);
        let ins = group_insights(&p, g, &members, &s);
        assert_eq!(ins.len(), 1);
        assert_eq!(ins[0].group_value, 5.0, "female max");
        assert_eq!(ins[0].complement_value, 2.0, "male max");
        assert_eq!(ins[0].gap(), 3.0);
        assert!(ins[0].statement.contains("higher than"));
        assert!(ins[0].statement.contains("gender=F"));
    }

    #[test]
    fn describe_uses_shared_attributes() {
        let (s, _, _, g) = setup();
        let d = describe_group(g, &s);
        assert!(d.contains("gender=F"));
        assert!(d.contains("2 members"));
    }

    #[test]
    fn untouched_objects_are_skipped() {
        let (mut s, mut p, users, g) = setup();
        // A movie only U3 rated: the F group has no insight there.
        let m2 = s.add_base_with("Other", "movies", &[]);
        p.push(
            m2,
            Tensor::new(Polynomial::var(users[2]), AggValue::single(3.0)),
        );
        let members = s.base_of(g);
        let ins = group_insights(&p, g, &members, &s);
        assert_eq!(ins.len(), 1, "only MatchPoint produces an insight");
    }
}
