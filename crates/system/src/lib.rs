//! # prox-system
//!
//! The PROX system (Chapter 7): selection, summarization, and provisioning
//! services over a MovieLens-style ratings workload, plus a step-through
//! session model and text renderers backing the `prox` CLI (the terminal
//! rendition of the paper's web UI).
//!
//! The original system is a Java/Spring server with an AngularJS client;
//! the services' responsibilities are reproduced here as a library:
//!
//! * [`selection`] — restrict provenance by title / genre / year;
//! * [`summarization`] — run Algorithm 1 with the UI's parameters;
//! * [`evaluator`] — apply hypothetical assignments (provisioning) to the
//!   original or summary provenance and report values with timings;
//! * [`session`] — navigate the algorithm's steps and inspect groups.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Panic hygiene (clippy::unwrap_used/expect_used) comes from
// [workspace.lints]; test code is exempt via clippy.toml.

pub mod evaluator;
pub mod insights;
pub mod render;
pub mod selection;
pub mod session;
pub mod summarization;

pub use evaluator::{evaluate, evaluate_both, resolve_assignment, Assignment, Evaluation};
pub use insights::{group_insights, insights, Insight};
pub use selection::{select, Selected, Selection};
pub use session::{GroupView, Session};
pub use summarization::{summarize, SummarizationRequest, Summarized};
