//! Text rendering of the PROX views (§7.2) for the CLI.

use prox_provenance::{display, AnnStore, ProvExpr, Summarizable};

use crate::evaluator::Evaluation;
use crate::session::{GroupView, Session};
use crate::summarization::SummarizationRequest;

/// Render the selection view: selected provenance + size.
pub fn selection_view(p: &ProvExpr, store: &AnnStore) -> String {
    let mut out = String::new();
    out.push_str("── Selected Provenance Expression ──\n");
    out.push_str(&truncate(&display::render_provexpr(p, store), 800));
    out.push_str(&format!("\n\nProvenance Size: {}\n", Summarizable::size(p)));
    out
}

/// Render the summarization view: the request parameters.
pub fn summarization_view(req: &SummarizationRequest) -> String {
    format!(
        "── Summarization Parameters ──\n\
         Distance weight: {}\n\
         Size weight: {}\n\
         Distance bound: {}\n\
         Size bound: {}\n\
         Number of steps: {}\n\
         Aggregation: {}\n\
         Valuation class: {}\n\
         VAL-FUNC: {}\n",
        req.w_dist,
        1.0 - req.w_dist,
        req.target_dist,
        req.target_size,
        req.steps,
        req.aggregation,
        req.valuation_class.name(),
        req.val_func.name(),
    )
}

/// Render the expression subview of the summary view.
pub fn expression_view(session: &Session, store: &AnnStore) -> String {
    let expr = session.expression();
    format!(
        "── Summary Provenance - Expression (step {}/{}) ──\n{}\n\nProvenance Size: {}\n",
        session.cursor(),
        session.steps(),
        truncate(&display::render_provexpr(expr, store), 800),
        session.size(),
    )
}

/// Render the groups subview of the summary view.
pub fn groups_view(groups: &[GroupView]) -> String {
    if groups.is_empty() {
        return "── Summary Provenance - Groups ──\n(no groups at this step)\n".to_owned();
    }
    let mut out = String::from("── Summary Provenance - Groups ──\n");
    for g in groups {
        out.push_str(&format!(
            "Group {:<16} size {:<3} members: {}\n",
            g.name,
            g.size,
            g.members.join(", ")
        ));
        if !g.shared_attrs.is_empty() {
            out.push_str(&format!("  shared: {}\n", g.shared_attrs.join(", ")));
        }
        if let Some(agg) = g.aggregated {
            out.push_str(&format!("  AGG: {agg}\n"));
        }
    }
    out
}

/// Render an evaluation-result table with its timing (Figs 7.9–7.10).
pub fn evaluation_view(ev: &Evaluation) -> String {
    let mut out = String::from("── Evaluation Result ──\n");
    out.push_str(&format!("{:<28} Aggregated Rating\n", "Movie Title"));
    for row in &ev.rows {
        out.push_str(&format!("{:<28} {}\n", row.title, row.aggregated));
    }
    out.push_str(&format!(
        "Evaluation Time: {} nanoseconds\n",
        ev.eval_time_ns
    ));
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(max).collect();
        format!("{cut} …")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::ResultRow;
    use prox_provenance::{AggKind, AggValue, Polynomial, Tensor};

    #[test]
    fn selection_view_includes_size() {
        let mut s = AnnStore::new();
        let u = s.add_base_with("U1", "users", &[]);
        let m = s.add_base_with("M1", "movies", &[]);
        let mut p = ProvExpr::new(AggKind::Max);
        p.push(m, Tensor::new(Polynomial::var(u), AggValue::single(4.0)));
        let view = selection_view(&p, &s);
        assert!(view.contains("Provenance Size: 1"));
        assert!(view.contains("U1"));
    }

    #[test]
    fn summarization_view_lists_parameters() {
        let view = summarization_view(&SummarizationRequest::default());
        assert!(view.contains("Distance weight: 0.5"));
        assert!(view.contains("Valuation class: Cancel Single Annotation"));
        assert!(view.contains("VAL-FUNC: Euclidean Distance"));
    }

    #[test]
    fn evaluation_view_formats_table() {
        let ev = Evaluation {
            rows: vec![
                ResultRow {
                    title: "Friday".into(),
                    aggregated: 5.0,
                },
                ResultRow {
                    title: "Sleepover".into(),
                    aggregated: 0.0,
                },
            ],
            eval_time_ns: 48118,
        };
        let view = evaluation_view(&ev);
        assert!(view.contains("Friday"));
        assert!(view.contains("48118 nanoseconds"));
    }

    #[test]
    fn truncate_long_expressions() {
        let long = "x".repeat(2000);
        let t = truncate(&long, 100);
        assert!(t.chars().count() <= 102);
        assert!(t.ends_with('…'));
    }
}
