//! The selection service (§7.1): restricts provenance according to
//! user-defined selection criteria — a subset of movies chosen by title
//! search or by genre/year (Figs 7.2–7.3).

use prox_datasets::MovieLens;
use prox_provenance::{AggKind, AnnId, ProvExpr};

/// A selection request, mirroring the two modes of the selection view.
#[derive(Clone, Debug)]
pub enum Selection {
    /// Explicit movie titles.
    Titles(Vec<String>),
    /// Substring search over titles.
    Search(String),
    /// Genre and/or year filters.
    GenreYear {
        /// Genre filter (e.g. "Drama").
        genre: Option<String>,
        /// Release-year filter.
        year: Option<i32>,
    },
    /// Everything.
    All,
}

/// The provenance selected for summarization.
#[derive(Clone, Debug)]
pub struct Selected {
    /// The selected movies.
    pub movies: Vec<AnnId>,
    /// Their provenance expression.
    pub provenance: ProvExpr,
}

/// Resolve a selection against a MovieLens dataset.
pub fn select(data: &mut MovieLens, selection: &Selection, agg: AggKind) -> Selected {
    let movies: Vec<AnnId> = match selection {
        Selection::Titles(titles) => titles
            .iter()
            .filter_map(|t| data.store.by_name(t))
            .filter(|m| data.movies.contains(m))
            .collect(),
        Selection::Search(needle) => data.search_titles(needle),
        Selection::GenreYear { genre, year } => data.select_by(genre.as_deref(), *year),
        Selection::All => data.movies.clone(),
    };
    let provenance = data.provenance_for(&movies, agg);
    Selected { movies, provenance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_datasets::MovieLensConfig;

    fn data() -> MovieLens {
        MovieLens::generate(MovieLensConfig {
            users: 20,
            movies: 14,
            ratings_per_user: 3,
            seed: 11,
        })
    }

    #[test]
    fn select_all_covers_every_movie() {
        let mut d = data();
        let sel = select(&mut d, &Selection::All, AggKind::Max);
        assert_eq!(sel.movies.len(), 14);
        assert!(sel.provenance.num_objects() <= 14);
    }

    #[test]
    fn select_by_titles_filters() {
        let mut d = data();
        let name = d.store.name(d.movies[0]).to_owned();
        let sel = select(&mut d, &Selection::Titles(vec![name.clone()]), AggKind::Max);
        assert_eq!(sel.movies.len(), 1);
        for (o, _) in sel.provenance.entries() {
            assert_eq!(d.store.name(*o), name);
        }
    }

    #[test]
    fn search_matches_substrings() {
        let mut d = data();
        let sel = select(&mut d, &Selection::Search("titan".into()), AggKind::Max);
        assert!(sel.movies.len() >= 2);
        for &m in &sel.movies {
            assert!(d.store.name(m).to_lowercase().contains("titan"));
        }
    }

    #[test]
    fn unknown_titles_are_ignored() {
        let mut d = data();
        let sel = select(
            &mut d,
            &Selection::Titles(vec!["NoSuchMovie".into()]),
            AggKind::Max,
        );
        assert!(sel.movies.is_empty());
        assert_eq!(sel.provenance.num_objects(), 0);
    }
}
