//! Summary-view sessions: step-through navigation (the UI's ◀ ▶ arrows)
//! and the groups view (Figs 7.5–7.7) describing which users the algorithm
//! mapped together, their attributes, and the group's aggregated value.

use prox_provenance::{AnnId, AnnStore, ProvExpr, Summarizable, Valuation};

use crate::summarization::Summarized;

/// Description of one group (summary annotation) for the groups view.
#[derive(Clone, Debug)]
pub struct GroupView {
    /// The summary annotation.
    pub target: AnnId,
    /// Display name ("Male", "25-34", ...).
    pub name: String,
    /// Number of base members.
    pub size: usize,
    /// Member names.
    pub members: Vec<String>,
    /// Shared attributes as `attr=value` strings.
    pub shared_attrs: Vec<String>,
    /// The group's aggregated value in the current expression (`AGG:5` in
    /// the UI), when the group appears in exactly one coordinate this is
    /// that coordinate's contribution.
    pub aggregated: Option<f64>,
}

/// A navigable session over a summarization result.
#[derive(Debug)]
pub struct Session {
    summarized: Summarized,
    /// Current step: 0 = after GroupEquivalent, `history.len()` = final.
    cursor: usize,
}

impl Session {
    /// Open a session (cursor at the final step).
    pub fn new(summarized: Summarized) -> Self {
        let cursor = summarized.result.history.len();
        Session { summarized, cursor }
    }

    /// The underlying result.
    pub fn summarized(&self) -> &Summarized {
        &self.summarized
    }

    /// Number of navigable steps.
    pub fn steps(&self) -> usize {
        self.summarized.result.history.len()
    }

    /// The cursor position.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Step backward (the ◀ arrow). Returns the new position.
    pub fn back(&mut self) -> usize {
        self.cursor = self.cursor.saturating_sub(1);
        self.cursor
    }

    /// Step forward (the ▶ arrow). Returns the new position.
    pub fn forward(&mut self) -> usize {
        self.cursor = (self.cursor + 1).min(self.steps());
        self.cursor
    }

    /// The expression at the cursor.
    pub fn expression(&self) -> &ProvExpr {
        &self.summarized.result.snapshots[self.cursor]
    }

    /// Provenance size at the cursor.
    pub fn size(&self) -> usize {
        self.expression().size()
    }

    /// Groups present in the expression at the cursor.
    pub fn groups(&self, store: &AnnStore) -> Vec<GroupView> {
        let expr = self.expression();
        let mut out = Vec::new();
        let full = expr.eval(&Valuation::all_true());
        for a in Summarizable::annotations(expr) {
            let ann = store.get(a);
            if !ann.kind.is_summary() {
                continue;
            }
            let members = ann
                .base_members()
                .iter()
                .map(|&m| store.name(m).to_owned())
                .collect();
            let shared_attrs = ann
                .attrs
                .iter()
                .map(|&(at, v)| format!("{}={}", store.attr_name(at), store.value_name(v)))
                .collect();
            // Aggregate contribution: the MAX/SUM of tensors whose prov
            // mentions the group, per coordinate; we surface the first
            // coordinate's value (the UI shows per-group AGG within the
            // selected movie).
            let aggregated = expr
                .entries()
                .iter()
                .find(|(_, e)| {
                    e.tensors()
                        .iter()
                        .any(|t| t.prov.annotations().contains(&a))
                })
                .and_then(|(o, _)| full.scalar_for(*o));
            out.push(GroupView {
                target: a,
                name: ann.name.clone(),
                size: ann.base_members().len(),
                members,
                shared_attrs,
                aggregated,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{select, Selection};
    use crate::summarization::{summarize, SummarizationRequest};
    use prox_datasets::{MovieLens, MovieLensConfig};

    fn session() -> (MovieLens, Session) {
        let mut d = MovieLens::generate(MovieLensConfig {
            users: 12,
            movies: 4,
            ratings_per_user: 2,
            seed: 9,
        });
        let sel = select(&mut d, &Selection::All, prox_provenance::AggKind::Max);
        let out = summarize(&mut d, &sel, SummarizationRequest::default()).unwrap();
        let s = Session::new(out);
        (d, s)
    }

    #[test]
    fn navigation_clamps_at_ends() {
        let (_, mut s) = session();
        let steps = s.steps();
        assert_eq!(s.cursor(), steps);
        s.forward();
        assert_eq!(s.cursor(), steps);
        for _ in 0..steps + 5 {
            s.back();
        }
        assert_eq!(s.cursor(), 0);
    }

    #[test]
    fn sizes_shrink_towards_final_step() {
        let (_, mut s) = session();
        while s.cursor() > 0 {
            let here = s.size();
            s.back();
            assert!(s.size() >= here);
        }
    }

    #[test]
    fn groups_describe_summary_annotations() {
        let (d, s) = session();
        if s.steps() == 0 {
            return; // nothing merged on this seed; other tests cover merging
        }
        let groups = s.groups(&d.store);
        assert!(!groups.is_empty());
        for g in &groups {
            assert!(g.size >= 2);
            assert_eq!(g.members.len(), g.size);
        }
    }

    #[test]
    fn initial_step_has_no_groups_when_equivalence_is_trivial() {
        let (d, mut s) = session();
        while s.cursor() > 0 {
            s.back();
        }
        // Under CancelSingleAnnotation, GroupEquivalent merges nothing.
        assert!(s.groups(&d.store).is_empty());
    }
}
