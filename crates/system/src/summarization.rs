//! The summarization service (§7.1): runs Algorithm 1 on selected
//! provenance with the parameters of the summarization view (Fig 7.4).

use prox_core::{StopReason, SummarizeConfig, Summarizer, SummaryResult, ValFuncKind};
use prox_datasets::MovieLens;
use prox_obs::SpanTimer;
use prox_provenance::{AggKind, ProvExpr, Valuation, ValuationClass};
use prox_robust::{ExecutionBudget, ProxError};

use crate::selection::Selected;

/// One summarization-service request, end to end (valuation generation
/// included — the extra over `summarize` is service overhead).
static SPAN_SERVICE: SpanTimer = SpanTimer::new("service/summarize");

/// The parameters exposed by the summarization view.
#[derive(Clone, Debug)]
pub struct SummarizationRequest {
    /// Distance weight (`wDist`); `wSize` is its complement.
    pub w_dist: f64,
    /// Distance bound (`TARGET-DIST`) in `[0,1]`.
    pub target_dist: f64,
    /// Size bound (`TARGET-SIZE`).
    pub target_size: usize,
    /// Maximum number of steps.
    pub steps: usize,
    /// Aggregation function.
    pub aggregation: AggKind,
    /// Valuation class.
    pub valuation_class: ValuationClass,
    /// VAL-FUNC.
    pub val_func: ValFuncKind,
    /// Execution budget (deadline / step cap / cancellation); unlimited by
    /// default. Mid-run exhaustion keeps the best-so-far summary.
    pub budget: ExecutionBudget,
}

impl Default for SummarizationRequest {
    fn default() -> Self {
        SummarizationRequest {
            w_dist: 0.5,
            target_dist: 1.0,
            target_size: 1,
            steps: 10,
            aggregation: AggKind::Max,
            valuation_class: ValuationClass::CancelSingleAnnotation,
            val_func: ValFuncKind::Euclidean,
            budget: ExecutionBudget::unlimited(),
        }
    }
}

/// The service's output: the algorithm result plus the inputs needed by
/// the summary view (original provenance, valuations).
#[derive(Debug)]
pub struct Summarized {
    /// The algorithm's result, with per-step snapshots for the UI arrows.
    pub result: SummaryResult<ProvExpr>,
    /// The original (selected) provenance.
    pub original: ProvExpr,
    /// The valuation class used.
    pub valuations: Vec<Valuation>,
    /// Echo of the request.
    pub request: SummarizationRequest,
}

impl Summarized {
    /// Whether the run ended because no more merges were possible.
    pub fn exhausted(&self) -> bool {
        self.result.stop_reason == StopReason::NoCandidates
    }
}

/// Run the summarization service on a selection.
///
/// Errors are typed: invalid view parameters surface as
/// [`ProxError::Config`] (an input error), and a budget that is exhausted
/// before any work as [`ProxError::Budget`]. Mid-run budget exhaustion is
/// *not* an error — the best-so-far summary is returned with a budget
/// [`StopReason`].
pub fn summarize(
    data: &mut MovieLens,
    selected: &Selected,
    request: SummarizationRequest,
) -> Result<Summarized, ProxError> {
    let _span = SPAN_SERVICE.start();
    // Request-scoped trace: service-level span wrapping valuation
    // generation, constraint assembly, and the summarizer run.
    let _trace_service = request.budget.trace.as_ref().map(|t| t.span("service"));
    let valuations = data.valuations(request.valuation_class);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        w_dist: request.w_dist,
        w_size: 1.0 - request.w_dist,
        target_dist: request.target_dist,
        target_size: request.target_size,
        max_steps: request.steps,
        val_func: request.val_func,
        record_snapshots: true,
        budget: request.budget.clone(),
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    let result = summarizer.summarize(&selected.provenance, &valuations)?;
    Ok(Summarized {
        result,
        original: selected.provenance.clone(),
        valuations,
        request,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{select, Selection};
    use prox_datasets::MovieLensConfig;

    fn run(request: SummarizationRequest) -> (MovieLens, Summarized) {
        let mut d = MovieLens::generate(MovieLensConfig {
            users: 15,
            movies: 5,
            ratings_per_user: 2,
            seed: 3,
        });
        let sel = select(&mut d, &Selection::All, request.aggregation);
        let out = summarize(&mut d, &sel, request).unwrap();
        (d, out)
    }

    #[test]
    fn default_request_summarizes() {
        let (_, out) = run(SummarizationRequest::default());
        assert!(out.result.final_size() < out.original.size());
        assert!(!out.result.history.is_empty());
        assert_eq!(out.result.snapshots.len(), out.result.history.len() + 1);
    }

    #[test]
    fn size_bound_is_respected() {
        let (_, out) = run(SummarizationRequest {
            w_dist: 1.0,
            target_size: 40,
            steps: usize::MAX,
            ..Default::default()
        });
        assert!(out.result.final_size() <= 40 || out.exhausted());
    }

    #[test]
    fn summary_annotations_exist_in_store() {
        let (d, out) = run(SummarizationRequest::default());
        for step in &out.result.history.steps {
            assert!(d.store.get(step.target).kind.is_summary());
        }
    }

    #[test]
    fn invalid_weights_are_an_input_error() {
        let mut d = MovieLens::generate(MovieLensConfig::default());
        let sel = select(&mut d, &Selection::All, AggKind::Max);
        let req = SummarizationRequest {
            w_dist: 1.5,
            ..Default::default()
        };
        let err = summarize(&mut d, &sel, req).unwrap_err();
        assert_eq!(err.kind(), prox_robust::ErrorKind::Input);
        assert_eq!(err.kind().exit_code(), 2);
    }

    #[test]
    fn upfront_exhausted_budget_is_a_budget_error() {
        let mut d = MovieLens::generate(MovieLensConfig::default());
        let sel = select(&mut d, &Selection::All, AggKind::Max);
        let req = SummarizationRequest {
            budget: ExecutionBudget::unlimited().with_deadline_at(std::time::Instant::now()),
            ..Default::default()
        };
        let err = summarize(&mut d, &sel, req).unwrap_err();
        assert_eq!(err.kind(), prox_robust::ErrorKind::Budget);
        assert_eq!(err.kind().exit_code(), 3);
    }

    #[test]
    fn mid_run_deadline_returns_best_so_far() {
        let mut d = MovieLens::generate(MovieLensConfig {
            users: 40,
            movies: 8,
            ratings_per_user: 3,
            seed: 11,
        });
        let sel = select(&mut d, &Selection::All, AggKind::Max);
        let req = SummarizationRequest {
            steps: usize::MAX,
            budget: ExecutionBudget::unlimited().with_max_steps(2),
            ..Default::default()
        };
        let out = summarize(&mut d, &sel, req).expect("anytime contract");
        assert_eq!(out.result.stop_reason, StopReason::BudgetExhausted);
        assert!(out.result.history.len() <= 2);
        assert!(out.result.history.check_monotone().is_ok());
    }
}
