//! Taxonomy-consistent valuations (Example 5.2.1).
//!
//! "A valuation is considered to be inconsistent if it assigns false to a
//! Wikipedia category/WordNet concept A, but assigns true to a concept B
//! s.t. B is a child of A in the taxonomy." Annotations attached to
//! concepts inherit this rule: cancelling an annotation whose concept
//! subsumes another live annotation's concept is inconsistent.

use prox_provenance::{AnnId, AnnStore, Valuation};
use prox_robust::ProxError;

use crate::dag::{ConceptId, Taxonomy};

/// Check a taxonomy is well-formed enough for consistency filtering and
/// Wu–Palmer relatedness: subclass edges must be acyclic. Returns a
/// [`ProxError::Taxonomy`] naming the offending cycle otherwise.
///
/// The query layer itself stays total on cyclic inputs (visited-set
/// guards), so this is a *diagnostic* gate callers run on untrusted
/// taxonomies before summarizing, not a safety requirement.
pub fn check_taxonomy(taxonomy: &Taxonomy) -> Result<(), ProxError> {
    if let Some(cycle) = taxonomy.find_cycle() {
        let names: Vec<&str> = cycle.iter().map(|&c| taxonomy.name(c)).collect();
        return Err(ProxError::taxonomy(format!(
            "subclass cycle: {}",
            names.join(" -> ")
        )));
    }
    Ok(())
}

/// Is the valuation consistent with the taxonomy over the given annotations?
///
/// For every pair of concept-attached annotations `(x, y)` where `x`'s
/// concept is a strict ancestor of `y`'s (or the same concept), assigning
/// `x` false and `y` true is inconsistent.
pub fn is_consistent(v: &Valuation, anns: &[AnnId], store: &AnnStore, taxonomy: &Taxonomy) -> bool {
    // Only cancelled, concept-attached annotations can trigger violations.
    let cancelled: Vec<(AnnId, ConceptId)> = anns
        .iter()
        .copied()
        .filter(|&a| !v.truth(a))
        .filter_map(|a| store.get(a).concept.map(|c| (a, ConceptId(c))))
        .collect();
    if cancelled.is_empty() {
        return true;
    }
    for &(_, dead_concept) in &cancelled {
        for &live in anns {
            if !v.truth(live) {
                continue;
            }
            let Some(live_concept) = store.get(live).concept.map(ConceptId) else {
                continue;
            };
            if live_concept != dead_concept && taxonomy.is_ancestor(dead_concept, live_concept) {
                return false;
            }
        }
    }
    true
}

/// Filter a valuation class down to the taxonomy-consistent ones.
pub fn filter_consistent(
    valuations: Vec<Valuation>,
    anns: &[AnnId],
    store: &AnnStore,
    taxonomy: &Taxonomy,
) -> Vec<Valuation> {
    valuations
        .into_iter()
        .filter(|v| is_consistent(v, anns, store, taxonomy))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::ValuationClass;

    fn setup() -> (AnnStore, Taxonomy, Vec<AnnId>) {
        let mut t = Taxonomy::new();
        t.subclass("musician", "person");
        t.subclass("singer", "musician");
        let mut s = AnnStore::new();
        let p_person = s.add_base_with("PagePerson", "pages", &[]);
        let p_musician = s.add_base_with("PageMusician", "pages", &[]);
        let p_singer = s.add_base_with("PageSinger", "pages", &[]);
        s.set_concept(p_person, t.by_name("person").unwrap().0);
        s.set_concept(p_musician, t.by_name("musician").unwrap().0);
        s.set_concept(p_singer, t.by_name("singer").unwrap().0);
        (s, t, vec![p_person, p_musician, p_singer])
    }

    #[test]
    fn cancelling_a_leaf_is_consistent() {
        let (s, t, anns) = setup();
        let v = Valuation::cancel(&[anns[2]]); // singer page
        assert!(is_consistent(&v, &anns, &s, &t));
    }

    #[test]
    fn cancelling_an_ancestor_with_live_descendant_is_inconsistent() {
        let (s, t, anns) = setup();
        let v = Valuation::cancel(&[anns[0]]); // person page, musician+singer live
        assert!(!is_consistent(&v, &anns, &s, &t));
    }

    #[test]
    fn cancelling_whole_subtree_is_consistent() {
        let (s, t, anns) = setup();
        let v = Valuation::cancel(&anns.clone());
        assert!(is_consistent(&v, &anns, &s, &t));
    }

    #[test]
    fn filter_keeps_only_consistent_singletons() {
        let (s, t, anns) = setup();
        let class = ValuationClass::CancelSingleAnnotation.generate(&s, &anns, &[]);
        let kept = filter_consistent(class, &anns, &s, &t);
        // Only the leaf (singer) can be cancelled alone.
        assert_eq!(kept.len(), 1);
        assert!(!kept[0].truth(anns[2]));
    }

    #[test]
    fn check_taxonomy_accepts_dags_and_names_cycles() {
        let (_, t, _) = setup();
        assert!(check_taxonomy(&t).is_ok());
        let mut bad = Taxonomy::new();
        bad.subclass("x", "y");
        bad.subclass("y", "z");
        let x = bad.by_name("x").unwrap();
        let z = bad.by_name("z").unwrap();
        bad.add_edge(z, x);
        let err = check_taxonomy(&bad).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn conceptless_annotations_never_violate() {
        let (mut s, t, mut anns) = setup();
        let u = s.add_base_with("User", "users", &[]);
        anns.push(u);
        let v = Valuation::cancel(&[u]);
        assert!(is_consistent(&v, &anns, &s, &t));
    }
}
