//! The concept taxonomy: a rooted DAG of `rdfs:subClassOf`-style facts
//! (YAGO/WordNet in the paper, §5.1).
//!
//! Concepts are interned; each may have multiple parents. The structure
//! supports the queries summarization needs: ancestor sets, common
//! ancestors, lowest common subsumers, and depths (for Wu–Palmer).

use std::collections::{HashMap, HashSet};

/// Handle to an interned concept.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A rooted taxonomy DAG.
#[derive(Clone, Debug, Default)]
pub struct Taxonomy {
    names: Vec<String>,
    by_name: HashMap<String, ConceptId>,
    parents: Vec<Vec<ConceptId>>,
    children: Vec<Vec<ConceptId>>,
    /// Minimal distance from a root (roots have depth 0), memoized.
    depths: Vec<u32>,
}

impl Taxonomy {
    /// Empty taxonomy.
    pub fn new() -> Self {
        Taxonomy::default()
    }

    /// Intern a concept (idempotent). New concepts start as roots.
    pub fn concept(&mut self, name: &str) -> ConceptId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        // ConceptId is u32; no generator in this workspace approaches 4
        // billion concepts (the WordNet fragment has dozens).
        assert!(u32::try_from(self.names.len()).is_ok(), "too many concepts");
        let id = ConceptId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.parents.push(Vec::new());
        self.children.push(Vec::new());
        self.depths.push(0);
        id
    }

    /// Record `child subClassOf parent`, updating depths.
    pub fn add_edge(&mut self, child: ConceptId, parent: ConceptId) {
        assert_ne!(child, parent, "self-loop in taxonomy");
        if !self.parents[child.index()].contains(&parent) {
            self.parents[child.index()].push(parent);
            self.children[parent.index()].push(child);
            self.recompute_depths();
        }
    }

    /// Convenience: add an edge by names, interning as needed.
    pub fn subclass(&mut self, child: &str, parent: &str) -> (ConceptId, ConceptId) {
        let c = self.concept(child);
        let p = self.concept(parent);
        self.add_edge(c, p);
        (c, p)
    }

    fn recompute_depths(&mut self) {
        // BFS from all roots; a DAG's depth is the minimum root distance.
        let n = self.names.len();
        let mut depth = vec![u32::MAX; n];
        let mut queue: Vec<ConceptId> = (0..n)
            .map(|i| ConceptId(i as u32))
            .filter(|c| self.parents[c.index()].is_empty())
            .collect();
        for &c in &queue {
            depth[c.index()] = 0;
        }
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            let next = depth[cur.index()] + 1;
            for &ch in &self.children[cur.index()] {
                if depth[ch.index()] > next {
                    depth[ch.index()] = next;
                    queue.push(ch);
                }
            }
        }
        // Unreachable nodes (cycles would cause these; we treat them as
        // roots to stay total).
        for d in &mut depth {
            if *d == u32::MAX {
                *d = 0;
            }
        }
        self.depths = depth;
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no concept is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a concept.
    pub fn name(&self, c: ConceptId) -> &str {
        &self.names[c.index()]
    }

    /// Look up a concept by name.
    pub fn by_name(&self, name: &str) -> Option<ConceptId> {
        self.by_name.get(name).copied()
    }

    /// Direct parents.
    pub fn parents(&self, c: ConceptId) -> &[ConceptId] {
        &self.parents[c.index()]
    }

    /// Direct children.
    pub fn children(&self, c: ConceptId) -> &[ConceptId] {
        &self.children[c.index()]
    }

    /// Depth (minimal distance from a root).
    pub fn depth(&self, c: ConceptId) -> u32 {
        self.depths[c.index()]
    }

    /// All ancestors of `c`, including `c` itself.
    pub fn ancestors(&self, c: ConceptId) -> HashSet<ConceptId> {
        let mut seen = HashSet::new();
        let mut stack = vec![c];
        while let Some(cur) = stack.pop() {
            if seen.insert(cur) {
                stack.extend(self.parents[cur.index()].iter().copied());
            }
        }
        seen
    }

    /// Is `anc` an ancestor of `c` (reflexive)?
    pub fn is_ancestor(&self, anc: ConceptId, c: ConceptId) -> bool {
        self.ancestors(c).contains(&anc)
    }

    /// Do two concepts share any common ancestor? (The semantic-constraint
    /// test of §3.2.)
    pub fn share_ancestor(&self, a: ConceptId, b: ConceptId) -> bool {
        let aa = self.ancestors(a);
        self.ancestors(b).iter().any(|c| aa.contains(c))
    }

    /// Lowest common subsumer: the deepest concept subsuming both, if any.
    /// Ties break toward the smaller id for determinism.
    pub fn lcs(&self, a: ConceptId, b: ConceptId) -> Option<ConceptId> {
        let aa = self.ancestors(a);
        let bb = self.ancestors(b);
        let mut common: Vec<ConceptId> = aa.intersection(&bb).copied().collect();
        common.sort_unstable();
        common
            .into_iter()
            .max_by_key(|&c| (self.depth(c), std::cmp::Reverse(c)))
    }

    /// Lowest common subsumer of many concepts.
    pub fn lcs_many(&self, concepts: &[ConceptId]) -> Option<ConceptId> {
        let (&first, rest) = concepts.split_first()?;
        let mut common = self.ancestors(first);
        for &c in rest {
            let anc = self.ancestors(c);
            common.retain(|x| anc.contains(x));
        }
        let mut v: Vec<ConceptId> = common.into_iter().collect();
        v.sort_unstable();
        v.into_iter()
            .max_by_key(|&c| (self.depth(c), std::cmp::Reverse(c)))
    }

    /// Iterate all concept ids.
    pub fn ids(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.names.len()).map(|i| ConceptId(i as u32))
    }

    /// All `(child, parent)` edges, in deterministic order.
    pub fn edges(&self) -> Vec<(ConceptId, ConceptId)> {
        let mut out = Vec::new();
        for child in self.ids() {
            for &parent in &self.parents[child.index()] {
                out.push((child, parent));
            }
        }
        out
    }

    /// Reverse a `child subClassOf parent` edge so it reads
    /// `parent subClassOf child`, recomputing depths. Returns whether the
    /// edge existed. Reversal can create cycles — that is the point: the
    /// fault-injection harness uses it to manufacture degenerate
    /// taxonomies, and [`Taxonomy::find_cycle`] detects them.
    pub fn flip_edge(&mut self, child: ConceptId, parent: ConceptId) -> bool {
        let Some(pos) = self.parents[child.index()]
            .iter()
            .position(|&p| p == parent)
        else {
            return false;
        };
        self.parents[child.index()].remove(pos);
        if let Some(cpos) = self.children[parent.index()]
            .iter()
            .position(|&c| c == child)
        {
            self.children[parent.index()].remove(cpos);
        }
        if !self.parents[parent.index()].contains(&child) {
            self.parents[parent.index()].push(child);
            self.children[child.index()].push(parent);
        }
        self.recompute_depths();
        true
    }

    /// Find a cycle among the subclass edges, if one exists, as a list of
    /// concepts where consecutive entries are child → parent and the last
    /// links back to the first. `None` for a proper DAG.
    pub fn find_cycle(&self) -> Option<Vec<ConceptId>> {
        // Iterative three-color DFS over parent edges.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.names.len();
        let mut color = vec![WHITE; n];
        for start in self.ids() {
            if color[start.index()] != WHITE {
                continue;
            }
            // Stack of (node, next-parent-index); `path` mirrors the gray chain.
            let mut stack = vec![(start, 0usize)];
            let mut path = vec![start];
            color[start.index()] = GRAY;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if let Some(&parent) = self.parents[node.index()].get(*next) {
                    *next += 1;
                    match color[parent.index()] {
                        WHITE => {
                            color[parent.index()] = GRAY;
                            stack.push((parent, 0));
                            path.push(parent);
                        }
                        GRAY => {
                            let at = path.iter().position(|&c| c == parent).unwrap_or(0);
                            return Some(path[at..].to_vec());
                        }
                        _ => {}
                    }
                } else {
                    color[node.index()] = BLACK;
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Taxonomy {
        let mut t = Taxonomy::new();
        t.subclass("person", "entity");
        t.subclass("entertainer", "person");
        t.subclass("performer", "entertainer");
        t.subclass("musician", "performer");
        t.subclass("singer", "musician");
        t.subclass("guitarist", "musician");
        t.subclass("scientist", "person");
        t
    }

    #[test]
    fn depths_follow_edges() {
        let t = small();
        assert_eq!(t.depth(t.by_name("entity").unwrap()), 0);
        assert_eq!(t.depth(t.by_name("person").unwrap()), 1);
        assert_eq!(t.depth(t.by_name("singer").unwrap()), 5);
    }

    #[test]
    fn ancestors_are_reflexive_and_transitive() {
        let t = small();
        let singer = t.by_name("singer").unwrap();
        let anc = t.ancestors(singer);
        for n in [
            "singer",
            "musician",
            "performer",
            "entertainer",
            "person",
            "entity",
        ] {
            assert!(anc.contains(&t.by_name(n).unwrap()), "{n}");
        }
        assert!(!anc.contains(&t.by_name("guitarist").unwrap()));
    }

    #[test]
    fn lcs_finds_deepest_common_subsumer() {
        let t = small();
        let singer = t.by_name("singer").unwrap();
        let guitarist = t.by_name("guitarist").unwrap();
        let scientist = t.by_name("scientist").unwrap();
        assert_eq!(t.lcs(singer, guitarist), t.by_name("musician"));
        assert_eq!(t.lcs(singer, scientist), t.by_name("person"));
        assert_eq!(t.lcs(singer, singer), Some(singer));
    }

    #[test]
    fn lcs_many_generalizes_pairwise() {
        let t = small();
        let ids: Vec<_> = ["singer", "guitarist", "scientist"]
            .iter()
            .map(|n| t.by_name(n).unwrap())
            .collect();
        assert_eq!(t.lcs_many(&ids), t.by_name("person"));
        assert_eq!(t.lcs_many(&ids[..2]), t.by_name("musician"));
        assert_eq!(t.lcs_many(&[]), None);
    }

    #[test]
    fn share_ancestor_in_connected_taxonomy() {
        let t = small();
        let singer = t.by_name("singer").unwrap();
        let scientist = t.by_name("scientist").unwrap();
        assert!(t.share_ancestor(singer, scientist));
    }

    #[test]
    fn disconnected_roots_share_nothing() {
        let mut t = Taxonomy::new();
        let a = t.concept("a");
        let b = t.concept("b");
        assert!(!t.share_ancestor(a, b));
        assert_eq!(t.lcs(a, b), None);
    }

    #[test]
    fn edges_enumerate_every_subclass_fact() {
        let t = small();
        let edges = t.edges();
        assert_eq!(edges.len(), 7);
        let person = t.by_name("person").unwrap();
        let entity = t.by_name("entity").unwrap();
        assert!(edges.contains(&(person, entity)));
    }

    #[test]
    fn flip_edge_reverses_and_can_create_cycles() {
        let mut t = small();
        assert!(t.find_cycle().is_none());
        let person = t.by_name("person").unwrap();
        let entity = t.by_name("entity").unwrap();
        assert!(t.flip_edge(person, entity));
        // person → entity became entity → person: still acyclic, new root.
        assert!(t.find_cycle().is_none());
        assert_eq!(t.depth(person), 0);
        // Flipping a deeper edge now closes a loop: entertainer → person
        // becomes person → entertainer while performer → entertainer → …
        // still reaches person the other way? Build an explicit cycle
        // instead: a → b plus flip of b's only path back.
        let mut c = Taxonomy::new();
        c.subclass("a", "b");
        c.subclass("b", "c");
        let (a, _) = (c.by_name("a").unwrap(), ());
        let cc = c.by_name("c").unwrap();
        c.add_edge(cc, a); // c → a closes the cycle a → b → c → a
        let cycle = c.find_cycle().expect("cycle exists");
        assert!(cycle.len() >= 2);
        // Flipping a nonexistent edge is a no-op.
        assert!(!c.flip_edge(a, cc));
    }

    #[test]
    fn cycle_detection_ignores_diamonds() {
        let mut t = Taxonomy::new();
        t.subclass("left", "root");
        t.subclass("right", "root");
        t.subclass("leaf", "left");
        t.subclass("leaf", "right");
        assert!(t.find_cycle().is_none());
    }

    #[test]
    fn queries_stay_total_on_cyclic_taxonomies() {
        let mut t = Taxonomy::new();
        t.subclass("a", "b");
        t.subclass("b", "c");
        let a = t.by_name("a").unwrap();
        let c = t.by_name("c").unwrap();
        t.add_edge(c, a);
        assert!(t.find_cycle().is_some());
        // Ancestor/LCS/depth queries terminate and stay consistent.
        assert!(t.is_ancestor(c, a));
        assert!(t.share_ancestor(a, c));
        assert!(t.lcs(a, c).is_some());
        for id in t.ids() {
            let _ = t.depth(id);
        }
    }

    #[test]
    fn multi_parent_dag_depth_is_min() {
        let mut t = Taxonomy::new();
        t.subclass("mid", "root");
        t.subclass("deep1", "mid");
        t.subclass("leaf", "deep1");
        // leaf also directly under root:
        let leaf = t.by_name("leaf").unwrap();
        let root = t.by_name("root").unwrap();
        t.add_edge(leaf, root);
        assert_eq!(t.depth(leaf), 1);
    }
}
