//! # prox-taxonomy
//!
//! Concept taxonomies for provenance summarization (§5.1 of the PROX
//! paper): a rooted DAG of `subClassOf` facts (YAGO/WordNet style),
//! Wu–Palmer semantic relatedness, a built-in WordNet-like fragment, and
//! taxonomy-consistent valuation filtering.
//!
//! Summarization uses taxonomies in three ways:
//! * as a *mapping constraint* — annotations may merge only when their
//!   concepts share a common ancestor;
//! * as a *tie-breaker* — between equal-score candidates, prefer the one
//!   whose members are taxonomically closest to the target concept;
//! * as a *valuation filter* — valuations cancelling a concept while one
//!   of its descendants stays live are dropped from the distance average.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod consistency;
pub mod dag;
pub mod wordnet;
pub mod wu_palmer;

pub use consistency::{check_taxonomy, filter_consistent, is_consistent};
pub use dag::{ConceptId, Taxonomy};
pub use wordnet::{page_leaf_concepts, wordnet_fragment};
pub use wu_palmer::{distance as wu_palmer_distance, group_distance, similarity, TaxonomyFold};
