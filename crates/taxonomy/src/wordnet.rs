//! A built-in WordNet-style taxonomy fragment mirroring the YAGO concepts
//! the paper's Wikipedia examples use (Example 5.2.1 lists the ancestor
//! chain of the "Adele" page: singer → musician → performer → entertainer
//! → person → causal_agent → physical_entity).

use crate::dag::Taxonomy;

/// Build the WordNet-like fragment used by the synthetic Wikipedia dataset.
///
/// Leaves under `wordnet_musician` and other mid-level concepts give the
/// summarizer realistic grouping choices; the shared spine up to
/// `wordnet_entity` keeps everything connected.
pub fn wordnet_fragment() -> Taxonomy {
    let mut t = Taxonomy::new();
    // Spine
    t.subclass("wordnet_physical_entity", "wordnet_entity");
    t.subclass("wordnet_object", "wordnet_physical_entity");
    t.subclass("wordnet_causal_agent", "wordnet_physical_entity");
    t.subclass("wordnet_person", "wordnet_causal_agent");
    // People
    t.subclass("wordnet_entertainer", "wordnet_person");
    t.subclass("wordnet_performer", "wordnet_entertainer");
    t.subclass("wordnet_musician", "wordnet_performer");
    t.subclass("wordnet_singer", "wordnet_musician");
    t.subclass("wordnet_guitarist", "wordnet_musician");
    t.subclass("wordnet_pianist", "wordnet_musician");
    t.subclass("wordnet_actor", "wordnet_performer");
    t.subclass("wordnet_comedian", "wordnet_performer");
    t.subclass("wordnet_scientist", "wordnet_person");
    t.subclass("wordnet_physicist", "wordnet_scientist");
    t.subclass("wordnet_chemist", "wordnet_scientist");
    t.subclass("wordnet_politician", "wordnet_person");
    t.subclass("wordnet_athlete", "wordnet_person");
    t.subclass("wordnet_footballer", "wordnet_athlete");
    t.subclass("wordnet_swimmer", "wordnet_athlete");
    t.subclass("wordnet_writer", "wordnet_person");
    t.subclass("wordnet_novelist", "wordnet_writer");
    t.subclass("wordnet_poet", "wordnet_writer");
    // Non-person objects (film/city pages etc.)
    t.subclass("wordnet_artifact", "wordnet_object");
    t.subclass("wordnet_creation", "wordnet_artifact");
    t.subclass("wordnet_movie", "wordnet_creation");
    t.subclass("wordnet_album", "wordnet_creation");
    t.subclass("wordnet_location", "wordnet_object");
    t.subclass("wordnet_city", "wordnet_location");
    t.subclass("wordnet_country", "wordnet_location");
    // Fault injection (PROX_FAULT=taxflip@n:seed): reverse n edges so
    // downstream code faces a degenerate — possibly cyclic — taxonomy.
    // A no-op unless the harness is active, so the fragment's invariants
    // (everything under wordnet_entity) hold in normal runs.
    if prox_robust::fault::enabled() {
        let edges = t.edges();
        for ix in prox_robust::fault::taxonomy_flip_edges(edges.len()) {
            let (child, parent) = edges[ix];
            t.flip_edge(child, parent);
        }
    }
    t
}

/// The leaf concepts suitable for attaching Wikipedia pages to.
pub fn page_leaf_concepts() -> &'static [&'static str] {
    &[
        "wordnet_singer",
        "wordnet_guitarist",
        "wordnet_pianist",
        "wordnet_actor",
        "wordnet_comedian",
        "wordnet_physicist",
        "wordnet_chemist",
        "wordnet_politician",
        "wordnet_footballer",
        "wordnet_swimmer",
        "wordnet_novelist",
        "wordnet_poet",
        "wordnet_movie",
        "wordnet_album",
        "wordnet_city",
        "wordnet_country",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wu_palmer::similarity;

    #[test]
    fn fragment_is_rooted_at_entity() {
        let t = wordnet_fragment();
        let entity = t.by_name("wordnet_entity").unwrap();
        for c in t.ids() {
            assert!(t.is_ancestor(entity, c), "{} not under entity", t.name(c));
        }
    }

    #[test]
    fn paper_ancestor_chain_exists() {
        let t = wordnet_fragment();
        let singer = t.by_name("wordnet_singer").unwrap();
        for anc in [
            "wordnet_musician",
            "wordnet_performer",
            "wordnet_entertainer",
            "wordnet_person",
            "wordnet_causal_agent",
            "wordnet_physical_entity",
        ] {
            assert!(t.is_ancestor(t.by_name(anc).unwrap(), singer), "{anc}");
        }
    }

    #[test]
    fn all_leaf_concepts_resolve() {
        let t = wordnet_fragment();
        for leaf in page_leaf_concepts() {
            assert!(t.by_name(leaf).is_some(), "{leaf}");
        }
    }

    #[test]
    fn singer_guitarist_lcs_is_musician() {
        let t = wordnet_fragment();
        let s = t.by_name("wordnet_singer").unwrap();
        let g = t.by_name("wordnet_guitarist").unwrap();
        assert_eq!(t.lcs(s, g), t.by_name("wordnet_musician"));
        assert!(similarity(&t, s, g) > 0.5);
    }
}
