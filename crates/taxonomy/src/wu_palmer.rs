//! Wu–Palmer semantic relatedness (\[29\] in the paper).
//!
//! `sim(a, b) = 2·depth(lcs(a,b)) / (depth(a) + depth(b))`, in `(0, 1]`
//! when a common subsumer exists; we define the distance as `1 − sim`.
//! The summarization algorithm uses these distances to (a) prefer mapping
//! annotations to nearby concepts ("Guitarist" over "Person") and (b) break
//! ties between equal-score candidates (§3.2, §4.2).

use crate::dag::{ConceptId, Taxonomy};

/// Wu–Palmer similarity between two concepts. Returns 0 when the concepts
/// share no ancestor. Two root concepts (depth 0) compared with themselves
/// yield 1 by convention.
pub fn similarity(t: &Taxonomy, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let Some(lcs) = t.lcs(a, b) else {
        return 0.0;
    };
    let da = t.depth(a) as f64;
    let db = t.depth(b) as f64;
    let dl = t.depth(lcs) as f64;
    if da + db == 0.0 {
        return 1.0;
    }
    (2.0 * dl) / (da + db)
}

/// Wu–Palmer distance: `1 − similarity`.
pub fn distance(t: &Taxonomy, a: ConceptId, b: ConceptId) -> f64 {
    1.0 - similarity(t, a, b)
}

/// Aggregation used to fold member-to-target taxonomy distances when
/// scoring or tie-breaking a candidate mapping (§3.2 offers MAX or SUM).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaxonomyFold {
    /// Maximum member distance.
    Max,
    /// Sum of member distances.
    Sum,
}

/// Distance of a group of member concepts from a target concept, folded
/// with the requested aggregation.
pub fn group_distance(
    t: &Taxonomy,
    members: &[ConceptId],
    target: ConceptId,
    fold: TaxonomyFold,
) -> f64 {
    let ds = members.iter().map(|&m| distance(t, m, target));
    match fold {
        TaxonomyFold::Max => ds.fold(0.0, f64::max),
        TaxonomyFold::Sum => ds.sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taxonomy() -> Taxonomy {
        let mut t = Taxonomy::new();
        t.subclass("person", "entity");
        t.subclass("performer", "person");
        t.subclass("musician", "performer");
        t.subclass("singer", "musician");
        t.subclass("guitarist", "musician");
        t
    }

    #[test]
    fn identical_concepts_have_similarity_one() {
        let t = taxonomy();
        let s = t.by_name("singer").unwrap();
        assert_eq!(similarity(&t, s, s), 1.0);
        assert_eq!(distance(&t, s, s), 0.0);
    }

    #[test]
    fn siblings_are_closer_than_distant_cousins() {
        let t = taxonomy();
        let singer = t.by_name("singer").unwrap();
        let guitarist = t.by_name("guitarist").unwrap();
        let person = t.by_name("person").unwrap();
        let sib = similarity(&t, singer, guitarist);
        let far = similarity(&t, singer, person);
        assert!(sib > far, "{sib} vs {far}");
        // singer depth 4, guitarist depth 4, lcs musician depth 3:
        assert!((sib - 2.0 * 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn mapping_to_nearby_concept_is_preferred() {
        // "mapping user annotations to 'Guitarist' is preferable to mapping
        // them to 'Person'" — i.e. smaller group distance.
        let t = taxonomy();
        let guitarist = t.by_name("guitarist").unwrap();
        let musician = t.by_name("musician").unwrap();
        let person = t.by_name("person").unwrap();
        let members = [guitarist];
        let d_close = group_distance(&t, &members, musician, TaxonomyFold::Max);
        let d_far = group_distance(&t, &members, person, TaxonomyFold::Max);
        assert!(d_close < d_far);
    }

    #[test]
    fn unrelated_concepts_have_zero_similarity() {
        let mut t = Taxonomy::new();
        let a = t.concept("a");
        let b = t.concept("b");
        assert_eq!(similarity(&t, a, b), 0.0);
        assert_eq!(distance(&t, a, b), 1.0);
    }

    #[test]
    fn group_folds_differ() {
        let t = taxonomy();
        let singer = t.by_name("singer").unwrap();
        let guitarist = t.by_name("guitarist").unwrap();
        let musician = t.by_name("musician").unwrap();
        let members = [singer, guitarist];
        let mx = group_distance(&t, &members, musician, TaxonomyFold::Max);
        let sm = group_distance(&t, &members, musician, TaxonomyFold::Sum);
        assert!(sm >= mx);
        assert!(mx > 0.0);
    }
}
