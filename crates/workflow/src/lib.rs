//! # prox-workflow
//!
//! The workflow substrate of Chapter 2: applications are captured as
//! FSM-like specifications whose modules are queries over their inputs and
//! an underlying annotated database, which they may also update. Running a
//! workflow *produces* the semiring provenance that PROX then summarizes —
//! this crate closes that loop with:
//!
//! * annotated `K`-relations and values ([`relation`]);
//! * provenance-aware relational operators — selection, duplicate-
//!   eliminating projection (`+`), natural join (`·`), union, and
//!   aggregation into tensor sums ([`query`]);
//! * the module/specification/run model over a persistent [`Database`]
//!   ([`module`]);
//! * the paper's movie-rating workflow of Fig 2.1, including the `Stats`
//!   updates and the symbolic activity guards `[Sᵢ·Uᵢ ⊗ NumRate > 2]` of
//!   Example 2.2.1 ([`movies`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod module;
pub mod movies;
pub mod query;
pub mod relation;

pub use module::{Database, Module, Node, Workflow, WorkflowError};
pub use movies::{
    demo_database, movie_workflow, movies_provenance, reviews_relation, AggregatorModule,
    ReviewingModule, ACTIVITY_THRESHOLD,
};
pub use query::{aggregate, join, project, select, union};
pub use relation::{Relation, Tuple, Value};
