//! Workflow specifications and executions (§2.1).
//!
//! A workflow is an FSM-like specification: modules represent processing
//! steps, edges indicate dataflow from one module's output port to the next
//! module's input port. The workflow operates in the context of a global
//! persistent state — an underlying [`Database`] — which atomic modules may
//! query *and update*. A run is a repeated application of modules in
//! specification order.

use std::collections::HashMap;
use std::fmt;

use prox_provenance::AnnStore;

use crate::relation::Relation;

/// The global persistent state: named annotated relations.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Install (or replace) a relation.
    pub fn insert(&mut self, relation: Relation) {
        self.relations.insert(relation.name.clone(), relation);
    }

    /// Read a relation.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutably access a relation (modules update `Stats` this way).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Names of all relations, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.relations.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

/// Errors raised during a workflow run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkflowError {
    /// A module referenced a database relation that does not exist.
    MissingRelation(String),
    /// A module was wired to an output port that was never produced.
    MissingInput(String),
    /// A module rejected its input.
    BadInput(String),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::MissingRelation(n) => write!(f, "missing database relation {n:?}"),
            WorkflowError::MissingInput(n) => write!(f, "missing input port {n:?}"),
            WorkflowError::BadInput(m) => write!(f, "bad module input: {m}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// An atomic module: a query over its inputs and the underlying database,
/// possibly updating the database.
pub trait Module {
    /// Module name (for the specification and error messages).
    fn name(&self) -> &str;

    /// Execute the module.
    fn run(
        &self,
        inputs: &[&Relation],
        db: &mut Database,
        store: &mut AnnStore,
    ) -> Result<Relation, WorkflowError>;
}

/// One node of the specification: a module plus the names of the output
/// ports it consumes.
pub struct Node {
    /// The module.
    pub module: Box<dyn Module>,
    /// Input port names (either workflow inputs or earlier nodes' outputs).
    pub inputs: Vec<String>,
    /// The name of this node's output port.
    pub output: String,
}

/// A workflow specification: nodes in execution (topological) order.
#[derive(Default)]
pub struct Workflow {
    nodes: Vec<Node>,
}

impl Workflow {
    /// Empty workflow.
    pub fn new() -> Self {
        Workflow::default()
    }

    /// Append a node (builder style). Nodes run in insertion order, so
    /// inputs must name workflow inputs or outputs of earlier nodes.
    pub fn then(mut self, module: impl Module + 'static, inputs: &[&str], output: &str) -> Self {
        self.nodes.push(Node {
            module: Box::new(module),
            inputs: inputs.iter().map(|s| (*s).to_owned()).collect(),
            output: output.to_owned(),
        });
        self
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the specification has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Execute a run: feed `inputs` (named port → relation), apply each
    /// module in order, return all produced ports (inputs included).
    pub fn run(
        &self,
        inputs: Vec<(String, Relation)>,
        db: &mut Database,
        store: &mut AnnStore,
    ) -> Result<HashMap<String, Relation>, WorkflowError> {
        let mut ports: HashMap<String, Relation> = inputs.into_iter().collect();
        for node in &self.nodes {
            let resolved: Vec<&Relation> = node
                .inputs
                .iter()
                .map(|name| {
                    ports
                        .get(name)
                        .ok_or_else(|| WorkflowError::MissingInput(name.clone()))
                })
                .collect::<Result<_, _>>()?;
            let out = node.module.run(&resolved, db, store)?;
            ports.insert(node.output.clone(), out);
        }
        Ok(ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Value;
    use prox_provenance::Polynomial;

    /// A module that copies its input and appends a row counter column to
    /// a database relation (exercising state updates).
    struct CountingModule;

    impl Module for CountingModule {
        fn name(&self) -> &str {
            "counter"
        }

        fn run(
            &self,
            inputs: &[&Relation],
            db: &mut Database,
            _store: &mut AnnStore,
        ) -> Result<Relation, WorkflowError> {
            let input = inputs
                .first()
                .ok_or_else(|| WorkflowError::BadInput("no input".into()))?;
            let stats = db
                .get_mut("Counts")
                .ok_or_else(|| WorkflowError::MissingRelation("Counts".into()))?;
            stats.push(vec![Value::Num(input.len() as f64)], Polynomial::one());
            Ok((*input).clone())
        }
    }

    #[test]
    fn run_executes_in_order_and_updates_state() {
        let mut db = Database::new();
        db.insert(Relation::new("Counts", &["n"]));
        let mut store = AnnStore::new();
        let wf = Workflow::new().then(CountingModule, &["in"], "mid").then(
            CountingModule,
            &["mid"],
            "out",
        );
        let mut input = Relation::new("R", &["x"]);
        input.push(vec![Value::Num(1.0)], Polynomial::one());
        let ports = wf
            .run(vec![("in".into(), input)], &mut db, &mut store)
            .expect("runs");
        assert!(ports.contains_key("out"));
        assert_eq!(db.get("Counts").map(Relation::len), Some(2));
    }

    #[test]
    fn missing_input_port_errors() {
        let mut db = Database::new();
        db.insert(Relation::new("Counts", &["n"]));
        let mut store = AnnStore::new();
        let wf = Workflow::new().then(CountingModule, &["absent"], "out");
        let err = wf.run(vec![], &mut db, &mut store).unwrap_err();
        assert_eq!(err, WorkflowError::MissingInput("absent".into()));
    }

    #[test]
    fn missing_relation_errors() {
        let mut db = Database::new(); // no Counts table
        let mut store = AnnStore::new();
        let wf = Workflow::new().then(CountingModule, &["in"], "out");
        let err = wf
            .run(
                vec![("in".into(), Relation::new("R", &["x"]))],
                &mut db,
                &mut store,
            )
            .unwrap_err();
        assert!(matches!(err, WorkflowError::MissingRelation(_)));
        assert!(err.to_string().contains("Counts"));
    }
}
