//! The paper's movie-rating workflow (Fig 2.1, Example 2.2.1).
//!
//! Reviews are collected by reviewing modules that crawl different
//! platforms. Each module updates statistics in the `Stats` table of the
//! underlying database (how many reviews a user submitted), consults it to
//! output *sanitized* reviews — keeping only reviews of users listed under
//! the module's role who are "active" (more than 2 reviews) — and feeds an
//! aggregator computing per-movie scores. The sanitized reviews carry the
//! conditional guard `[Sᵢ·Uᵢ ⊗ NumRate > 2]` so the activity condition
//! stays symbolic in the provenance, exactly as in Example 2.2.1.

// This module builds a fixed, self-contained demo database (see the
// matching lint.allow entries): the expects are lookups over names and
// columns the same function inserted lines earlier, so a failure is a bug
// in the construction code itself.
#![allow(clippy::expect_used)]

use prox_provenance::{
    AggKind, AggValue, AnnId, AnnStore, CmpOp, Guard, Polynomial, ProvExpr, Tensor,
};

use crate::module::{Database, Module, Workflow, WorkflowError};
use crate::query::{join, select, union};
use crate::relation::{Relation, Value};

/// The review-activity threshold of the example ("more than 2 reviews").
pub const ACTIVITY_THRESHOLD: f64 = 2.0;

/// A reviewing module for one platform/role (audience or critic crawler).
pub struct ReviewingModule {
    /// Module display name.
    pub name: String,
    /// The user role this module keeps ("audience" / "critic").
    pub role: String,
}

impl ReviewingModule {
    /// Build a module for a role.
    pub fn new(name: impl Into<String>, role: impl Into<String>) -> Self {
        ReviewingModule {
            name: name.into(),
            role: role.into(),
        }
    }
}

impl Module for ReviewingModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(
        &self,
        inputs: &[&Relation],
        db: &mut Database,
        store: &mut AnnStore,
    ) -> Result<Relation, WorkflowError> {
        let reviews = inputs
            .first()
            .ok_or_else(|| WorkflowError::BadInput("reviewing module needs reviews".into()))?;
        let users = db
            .get("Users")
            .ok_or_else(|| WorkflowError::MissingRelation("Users".into()))?
            .clone();

        // 1. Update Stats: bump NumRate per reviewing user, interning a
        //    stats annotation S_{uid} on first sight.
        let stats_dom = store.domain("stats");
        {
            let uid_col = reviews.col("uid");
            let mut bump: Vec<(String, f64)> = Vec::new();
            for t in &reviews.tuples {
                let uid = t.values[uid_col].to_string();
                match bump.iter_mut().find(|(u, _)| *u == uid) {
                    Some((_, n)) => *n += 1.0,
                    None => bump.push((uid, 1.0)),
                }
            }
            let stats = db
                .get_mut("Stats")
                .ok_or_else(|| WorkflowError::MissingRelation("Stats".into()))?;
            for (uid, n) in bump {
                let row = stats
                    .tuples
                    .iter()
                    .position(|t| t.values[0].to_string() == uid);
                match row {
                    Some(ix) => {
                        let cur = stats.tuples[ix].values[1].as_num().unwrap_or(0.0);
                        stats.tuples[ix].values[1] = Value::Num(cur + n);
                    }
                    None => {
                        let s_ann = store.add_base(&format!("S_{uid}"), stats_dom, vec![]);
                        stats.push(vec![Value::Str(uid), Value::Num(n)], Polynomial::var(s_ann));
                    }
                }
            }
        }

        // 2. Sanitize: join reviews with Users, keep this module's role.
        let joined = join(reviews, &users, "uid");
        let role_col = joined.col("role");
        let role = self.role.clone();
        let mut sanitized = select(&joined, move |t, _| {
            t.values[role_col].as_str() == Some(role.as_str())
        });
        sanitized.name = format!("{}-sanitized", self.name);

        // 3. Attach the NumRate observed at sanitization time, for the
        //    aggregator's guards.
        let stats = db.get("Stats").expect("updated above");
        sanitized.schema.push("num_rate".to_owned());
        let uid_col = sanitized.col("uid");
        for t in &mut sanitized.tuples {
            let uid = t.values[uid_col].to_string();
            let n = stats
                .tuples
                .iter()
                .find(|s| s.values[0].to_string() == uid)
                .and_then(|s| s.values[1].as_num())
                .unwrap_or(0.0);
            t.values.push(Value::Num(n));
        }
        Ok(sanitized)
    }
}

/// The aggregator module: merges the sanitized streams into one relation
/// (so the downstream provenance builder sees the union of platforms).
pub struct AggregatorModule;

impl Module for AggregatorModule {
    fn name(&self) -> &str {
        "aggregator"
    }

    fn run(
        &self,
        inputs: &[&Relation],
        _db: &mut Database,
        _store: &mut AnnStore,
    ) -> Result<Relation, WorkflowError> {
        let (first, rest) = inputs
            .split_first()
            .ok_or_else(|| WorkflowError::BadInput("aggregator needs inputs".into()))?;
        let mut acc = (*first).clone();
        for r in rest {
            acc = union(&acc, r);
        }
        acc.name = "SanitizedReviews".to_owned();
        Ok(acc)
    }
}

/// Build the Fig 2.1 specification: two reviewing modules (audience and
/// critic platforms) feeding the aggregator.
pub fn movie_workflow() -> Workflow {
    Workflow::new()
        .then(
            ReviewingModule::new("audience-crawler", "audience"),
            &["audience_reviews"],
            "audience_sanitized",
        )
        .then(
            ReviewingModule::new("critic-crawler", "critic"),
            &["critic_reviews"],
            "critic_sanitized",
        )
        .then(
            AggregatorModule,
            &["audience_sanitized", "critic_sanitized"],
            "sanitized",
        )
}

/// Turn the aggregator's output into the provenance-aware `Movies` value of
/// Example 2.2.1: one coordinate per movie, each tensor
/// `Uᵢ · [Sᵢ·Uᵢ ⊗ NumRate > threshold] ⊗ (score, 1)`.
pub fn movies_provenance(sanitized: &Relation, store: &mut AnnStore, kind: AggKind) -> ProvExpr {
    let uid_col = sanitized.col("uid");
    let movie_col = sanitized.col("movie");
    let score_col = sanitized.col("score");
    let nr_col = sanitized.col("num_rate");
    let movies_dom = store.domain("movies");

    let mut expr = ProvExpr::new(kind);
    for t in &sanitized.tuples {
        let uid = t.values[uid_col].to_string();
        let movie = t.values[movie_col].to_string();
        let score = t.values[score_col].as_num().expect("numeric score");
        let num_rate = t.values[nr_col].as_num().expect("numeric num_rate");
        let movie_ann = store.add_base(&movie, movies_dom, vec![]);
        let user_ann = expect_ann(store, &uid);
        let stats_ann = expect_ann(store, &format!("S_{uid}"));
        let guard = Guard::single(
            Polynomial::var(stats_ann).mul(&Polynomial::var(user_ann)),
            num_rate,
            CmpOp::Gt,
            ACTIVITY_THRESHOLD,
        );
        expr.push(
            movie_ann,
            Tensor::guarded(t.ann.clone(), vec![guard], AggValue::single(score)),
        );
    }
    expr.simplify();
    expr
}

fn expect_ann(store: &AnnStore, name: &str) -> AnnId {
    store
        .by_name(name)
        .unwrap_or_else(|| panic!("annotation {name:?} should have been interned by the run"))
}

/// Convenience: build the standard demo database (Users + empty Stats) for
/// a list of `(uid, role)` users, interning user annotations.
pub fn demo_database(users: &[(&str, &str)], store: &mut AnnStore) -> Database {
    let mut db = Database::new();
    let users_dom = store.domain("users");
    let role_attr = store.attr("role");
    let mut users_rel = Relation::new("Users", &["uid", "role"]);
    for &(uid, role) in users {
        let role_val = store.value(role);
        let ann = store.add_base(uid, users_dom, vec![(role_attr, role_val)]);
        users_rel.push(
            vec![Value::Str(uid.to_owned()), Value::Str(role.to_owned())],
            Polynomial::var(ann),
        );
    }
    db.insert(users_rel);
    db.insert(Relation::new("Stats", &["uid", "num_rate"]));
    db
}

/// Convenience: a reviews input relation with unit annotations (raw crawl
/// data has no independent provenance; it flows through the user tuples).
pub fn reviews_relation(name: &str, rows: &[(&str, &str, f64)]) -> Relation {
    let mut r = Relation::new(name, &["uid", "movie", "score"]);
    for &(uid, movie, score) in rows {
        r.push(
            vec![
                Value::Str(uid.to_owned()),
                Value::Str(movie.to_owned()),
                Value::Num(score),
            ],
            Polynomial::one(),
        );
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::Valuation;

    fn run_example() -> (AnnStore, Database, ProvExpr) {
        let mut store = AnnStore::new();
        let mut db = demo_database(
            &[("U1", "audience"), ("U2", "critic"), ("U3", "audience")],
            &mut store,
        );
        let wf = movie_workflow();
        // U1 and U3 review on the audience platform (3 reviews each so the
        // activity guard holds); U2 on the critic platform.
        let audience = reviews_relation(
            "audience_reviews",
            &[
                ("U1", "MatchPoint", 3.0),
                ("U1", "Friday", 4.0),
                ("U1", "PartyGirl", 2.0),
                ("U3", "MatchPoint", 3.0),
                ("U3", "Friday", 5.0),
                ("U3", "PartyGirl", 4.0),
            ],
        );
        let critic = reviews_relation(
            "critic_reviews",
            &[
                ("U2", "MatchPoint", 5.0),
                ("U2", "BlueJasmine", 4.0),
                ("U2", "Friday", 2.0),
            ],
        );
        let ports = wf
            .run(
                vec![
                    ("audience_reviews".into(), audience),
                    ("critic_reviews".into(), critic),
                ],
                &mut db,
                &mut store,
            )
            .expect("workflow runs");
        let expr = movies_provenance(&ports["sanitized"], &mut store, AggKind::Max);
        (store, db, expr)
    }

    #[test]
    fn stats_table_tracks_review_counts() {
        let (_, db, _) = run_example();
        let stats = db.get("Stats").expect("stats exists");
        assert_eq!(stats.len(), 3);
        for t in &stats.tuples {
            assert_eq!(t.values[1].as_num(), Some(3.0));
        }
    }

    #[test]
    fn provenance_matches_example_2_2_1_structure() {
        let (store, _, expr) = run_example();
        // One coordinate per movie; MatchPoint has all three reviewers.
        let mp = store.by_name("MatchPoint").expect("movie interned");
        let mp_expr = expr
            .entries()
            .iter()
            .find(|(o, _)| *o == mp)
            .map(|(_, e)| e)
            .expect("MatchPoint coordinate");
        assert_eq!(mp_expr.len(), 3);
        for t in mp_expr.tensors() {
            assert_eq!(t.guards.len(), 1, "every review carries its guard");
        }
        assert_eq!(
            mp_expr.eval(&Valuation::all_true()).result(),
            5.0,
            "MAX rating for MatchPoint"
        );
    }

    #[test]
    fn guards_enforce_the_activity_threshold() {
        let (store, _, expr) = run_example();
        let mp = store.by_name("MatchPoint").expect("movie interned");
        // Cancelling U2's *stats* tuple makes the guard fail, discarding
        // the review (Example 2.3.1's semantics) while U2 itself stays.
        let s2 = store.by_name("S_U2").expect("stats annotation");
        let v = Valuation::cancel(&[s2]);
        let vec = expr.eval(&v);
        assert_eq!(vec.scalar_for(mp), Some(3.0), "U2's 5-star review dropped");
        let bj = store.by_name("BlueJasmine").expect("movie interned");
        assert_eq!(vec.scalar_for(bj), Some(0.0));
    }

    #[test]
    fn role_filtering_keeps_platforms_separate() {
        let (store, _, expr) = run_example();
        // U2 is a critic: reviews submitted on the audience platform by a
        // critic (none here) would be dropped; sanity: BlueJasmine only has
        // U2's review.
        let bj = store.by_name("BlueJasmine").expect("movie interned");
        let coord = expr
            .entries()
            .iter()
            .find(|(o, _)| *o == bj)
            .map(|(_, e)| e)
            .expect("BlueJasmine coordinate");
        assert_eq!(coord.len(), 1);
    }

    #[test]
    fn workflow_provenance_feeds_the_summarizer() {
        use prox_provenance::Summarizable;
        let (_, _, expr) = run_example();
        assert!(Summarizable::size(&expr) > 0);
        assert!(!Summarizable::annotations(&expr).is_empty());
    }
}
