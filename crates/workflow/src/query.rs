//! Provenance-aware relational operators over annotated relations (§2.2):
//! `+` for alternative use (union, duplicate-eliminating projection), `·`
//! for joint use (join), and aggregation producing tensor expressions.

use std::collections::HashMap;

use prox_provenance::{AggExpr, AggKind, AggValue, Tensor};

use crate::module::WorkflowError;
use crate::relation::{Relation, Tuple, Value};

/// Selection: keep tuples satisfying the predicate; annotations unchanged.
pub fn select(r: &Relation, pred: impl Fn(&Tuple, &Relation) -> bool) -> Relation {
    let mut out = Relation::new(format!("σ({})", r.name), &[]);
    out.schema = r.schema.clone();
    for t in &r.tuples {
        if pred(t, r) {
            out.tuples.push(t.clone());
        }
    }
    out
}

/// Projection onto named columns, eliminating duplicates: annotations of
/// collapsed tuples add (`+` = alternative use).
pub fn project(r: &Relation, cols: &[&str]) -> Relation {
    let ixs: Vec<usize> = cols.iter().map(|c| r.col(c)).collect();
    let mut out = Relation::new(format!("π({})", r.name), cols);
    let mut index: HashMap<String, usize> = HashMap::new();
    for t in &r.tuples {
        let values: Vec<Value> = ixs.iter().map(|&ix| t.values[ix].clone()).collect();
        let key = values
            .iter()
            .map(Value::to_string)
            .collect::<Vec<_>>()
            .join("\u{1}");
        match index.get(&key) {
            Some(&row) => {
                let existing = &mut out.tuples[row];
                existing.ann = existing.ann.add(&t.ann);
            }
            None => {
                index.insert(key, out.tuples.len());
                out.tuples.push(Tuple::new(values, t.ann.clone()));
            }
        }
    }
    out
}

/// Natural join on a single shared column: annotations multiply
/// (`·` = joint use). Output schema is `left ++ (right minus join col)`.
pub fn join(left: &Relation, right: &Relation, on: &str) -> Relation {
    let lix = left.col(on);
    let rix = right.col(on);
    let mut schema: Vec<&str> = left.schema.iter().map(String::as_str).collect();
    let right_cols: Vec<(usize, &str)> = right
        .schema
        .iter()
        .enumerate()
        .filter(|&(ix, _)| ix != rix)
        .map(|(ix, c)| (ix, c.as_str()))
        .collect();
    schema.extend(right_cols.iter().map(|&(_, c)| c));
    let mut out = Relation::new(format!("({} ⋈ {})", left.name, right.name), &schema);

    // Hash join on the rendered key.
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for (row, t) in right.tuples.iter().enumerate() {
        index
            .entry(t.values[rix].to_string())
            .or_default()
            .push(row);
    }
    for lt in &left.tuples {
        let key = lt.values[lix].to_string();
        if let Some(rows) = index.get(&key) {
            for &row in rows {
                let rt = &right.tuples[row];
                let mut values = lt.values.clone();
                values.extend(right_cols.iter().map(|&(ix, _)| rt.values[ix].clone()));
                out.tuples.push(Tuple::new(values, lt.ann.mul(&rt.ann)));
            }
        }
    }
    out
}

/// Union of two relations with identical schemas: tuples concatenate and
/// duplicates (by value) have their annotations added.
pub fn union(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(a.schema, b.schema, "union requires identical schemas");
    let mut combined = Relation::new(format!("({} ∪ {})", a.name, b.name), &[]);
    combined.schema = a.schema.clone();
    combined.tuples = a.tuples.iter().chain(&b.tuples).cloned().collect();
    let cols: Vec<&str> = combined.schema.iter().map(String::as_str).collect();
    let mut out = project(&combined, &cols);
    out.name = format!("({} ∪ {})", a.name, b.name);
    out
}

/// Group-by aggregation producing a provenance-aware value per group
/// (§2.2's extension of K-relations with aggregated values): each group's
/// value is the formal sum `⊕ᵢ tᵢ ⊗ vᵢ` over its tuples. Errs when the
/// value column holds a non-numeric value — aggregation input is data, not
/// construction-time wiring, so this is a typed failure rather than a
/// panic.
pub fn aggregate(
    r: &Relation,
    group_col: &str,
    value_col: &str,
    kind: AggKind,
) -> Result<Vec<(Value, AggExpr)>, WorkflowError> {
    let gix = r.col(group_col);
    let vix = r.col(value_col);
    // Group slots in first-seen order; the index maps rendered keys to
    // slots so there is no second lookup that could miss.
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<(Value, Vec<Tensor>)> = Vec::new();
    for t in &r.tuples {
        let key = t.values[gix].to_string();
        let value = t.values[vix].as_num().ok_or_else(|| {
            WorkflowError::BadInput(format!(
                "aggregate({value_col}): non-numeric value {} in group {key}",
                t.values[vix]
            ))
        })?;
        let slot = *index.entry(key).or_insert_with(|| {
            groups.push((t.values[gix].clone(), Vec::new()));
            groups.len() - 1
        });
        groups[slot]
            .1
            .push(Tensor::new(t.ann.clone(), AggValue::single(value)));
    }
    Ok(groups
        .into_iter()
        .map(|(group, tensors)| (group, AggExpr::from_tensors(tensors, kind)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::{AnnId, Polynomial, Valuation};

    fn ann(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    fn users() -> Relation {
        let mut r = Relation::new("Users", &["uid", "role"]);
        r.push(
            vec!["U1".into(), "audience".into()],
            Polynomial::var(ann(0)),
        );
        r.push(vec!["U2".into(), "critic".into()], Polynomial::var(ann(1)));
        r.push(
            vec!["U3".into(), "audience".into()],
            Polynomial::var(ann(2)),
        );
        r
    }

    fn reviews() -> Relation {
        let mut r = Relation::new("Reviews", &["uid", "movie", "score"]);
        r.push(
            vec!["U1".into(), "MP".into(), 3.0.into()],
            Polynomial::var(ann(10)),
        );
        r.push(
            vec!["U2".into(), "MP".into(), 5.0.into()],
            Polynomial::var(ann(11)),
        );
        r.push(
            vec!["U2".into(), "BJ".into(), 4.0.into()],
            Polynomial::var(ann(12)),
        );
        r
    }

    #[test]
    fn select_keeps_annotations() {
        let r = users();
        let audience = select(&r, |t, rel| {
            t.values[rel.col("role")].as_str() == Some("audience")
        });
        assert_eq!(audience.len(), 2);
        assert_eq!(audience.tuples[0].ann, Polynomial::var(ann(0)));
    }

    #[test]
    fn project_adds_annotations_of_duplicates() {
        let r = users();
        let roles = project(&r, &["role"]);
        assert_eq!(roles.len(), 2);
        let audience_row = roles
            .tuples
            .iter()
            .find(|t| t.values[0].as_str() == Some("audience"))
            .expect("audience role present");
        // audience provenance = a0 + a2
        assert_eq!(
            audience_row.ann,
            Polynomial::var(ann(0)).add(&Polynomial::var(ann(2)))
        );
    }

    #[test]
    fn join_multiplies_annotations() {
        let joined = join(&reviews(), &users(), "uid");
        assert_eq!(joined.len(), 3);
        let u1 = &joined.tuples[0];
        assert_eq!(
            u1.ann,
            Polynomial::var(ann(10)).mul(&Polynomial::var(ann(0)))
        );
        assert_eq!(joined.schema, vec!["uid", "movie", "score", "role"]);
    }

    #[test]
    fn union_merges_duplicates() {
        let a = users();
        let b = users();
        let u = union(&a, &b);
        assert_eq!(u.len(), 3, "duplicates collapse");
        // Each tuple's annotation doubles: a + a = 2a.
        assert_eq!(u.tuples[0].ann.terms()[0].1, 2);
    }

    #[test]
    fn aggregate_builds_tensor_sums() {
        let groups = aggregate(&reviews(), "movie", "score", AggKind::Max).expect("numeric scores");
        assert_eq!(groups.len(), 2);
        let (mp, expr) = &groups[0];
        assert_eq!(mp.as_str(), Some("MP"));
        assert_eq!(expr.len(), 2);
        assert_eq!(expr.eval(&Valuation::all_true()).result(), 5.0);
        let v = Valuation::cancel(&[ann(11)]);
        assert_eq!(expr.eval(&v).result(), 3.0);
    }

    #[test]
    fn aggregate_rejects_non_numeric_column() {
        let err =
            aggregate(&reviews(), "movie", "uid", AggKind::Sum).expect_err("uid is not numeric");
        assert!(matches!(err, WorkflowError::BadInput(_)), "got {err:?}");
        assert!(err.to_string().contains("non-numeric"), "got {err}");
    }

    #[test]
    fn provisioning_via_join_provenance() {
        // Cancelling a user's base tuple kills every joined row derived
        // from it — joint use is multiplicative.
        let joined = join(&reviews(), &users(), "uid");
        let v = Valuation::cancel(&[ann(1)]); // cancel U2's Users tuple
        let visible = joined.visible(&v);
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].values[0].as_str(), Some("U1"));
    }
}
