//! Annotated relations: `K`-relations in the sense of \[21\] (§2.2), where
//! every tuple carries an `N[Ann]` provenance annotation.

use std::fmt;

use prox_provenance::{AnnStore, Polynomial, Valuation};

/// A relational value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string value.
    Str(String),
    /// A numeric value.
    Num(f64),
}

impl Value {
    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Num(_) => None,
        }
    }

    /// Numeric accessor.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Num(n) => {
                if n.fract() == 0.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

/// One annotated tuple.
#[derive(Clone, Debug, PartialEq)]
pub struct Tuple {
    /// Attribute values, positionally matching the relation's schema.
    pub values: Vec<Value>,
    /// The tuple's provenance annotation.
    pub ann: Polynomial,
}

impl Tuple {
    /// Build a tuple.
    pub fn new(values: Vec<Value>, ann: Polynomial) -> Self {
        Tuple { values, ann }
    }
}

/// An annotated relation with a named schema.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Relation {
    /// Relation name.
    pub name: String,
    /// Column names.
    pub schema: Vec<String>,
    /// The tuples.
    pub tuples: Vec<Tuple>,
}

impl Relation {
    /// Empty relation with a schema.
    pub fn new(name: impl Into<String>, schema: &[&str]) -> Self {
        Relation {
            name: name.into(),
            schema: schema.iter().map(|s| (*s).to_owned()).collect(),
            tuples: Vec::new(),
        }
    }

    /// Column index by name; panics on unknown columns (schema errors are
    /// construction bugs, not runtime conditions).
    pub fn col(&self, name: &str) -> usize {
        self.schema
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("relation {:?} has no column {name:?}", self.name))
    }

    /// Append a tuple.
    pub fn push(&mut self, values: Vec<Value>, ann: Polynomial) {
        debug_assert_eq!(values.len(), self.schema.len());
        self.tuples.push(Tuple::new(values, ann));
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The value at `(row, column-name)`.
    pub fn value(&self, row: usize, col: &str) -> &Value {
        &self.tuples[row].values[self.col(col)]
    }

    /// Tuples visible under a valuation (those whose annotation is truthy):
    /// the relation's image under provisioning.
    pub fn visible(&self, v: &Valuation) -> Vec<&Tuple> {
        self.tuples.iter().filter(|t| t.ann.eval_bool(v)).collect()
    }

    /// Render as an aligned table with annotations, for debugging and the
    /// CLI.
    pub fn render(&self, store: &AnnStore) -> String {
        let mut out = format!("{}({})\n", self.name, self.schema.join(", "));
        for t in &self.tuples {
            let row = t
                .values
                .iter()
                .map(Value::to_string)
                .collect::<Vec<_>>()
                .join(" | ");
            out.push_str(&format!(
                "  {row}   ⟵ {}\n",
                t.ann.render(&|a| store.name(a).to_owned())
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_provenance::AnnId;

    fn ann(ix: usize) -> AnnId {
        AnnId::from_index(ix)
    }

    #[test]
    fn schema_and_access() {
        let mut r = Relation::new("Users", &["uid", "gender"]);
        r.push(vec!["U1".into(), "F".into()], Polynomial::var(ann(0)));
        assert_eq!(r.col("gender"), 1);
        assert_eq!(r.value(0, "uid").as_str(), Some("U1"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        let r = Relation::new("R", &["a"]);
        r.col("b");
    }

    #[test]
    fn visibility_follows_annotations() {
        let mut r = Relation::new("R", &["x"]);
        r.push(vec![Value::Num(1.0)], Polynomial::var(ann(0)));
        r.push(vec![Value::Num(2.0)], Polynomial::var(ann(1)));
        let v = Valuation::cancel(&[ann(0)]);
        let vis = r.visible(&v);
        assert_eq!(vis.len(), 1);
        assert_eq!(vis[0].values[0], Value::Num(2.0));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(2.5).as_num(), Some(2.5));
        assert_eq!(Value::Num(3.0).to_string(), "3");
        assert_eq!(Value::Num(2.5).to_string(), "2.5");
    }
}
