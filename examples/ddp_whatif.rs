//! What-if analysis on Data-Dependent Process provenance (Example 5.2.2):
//! summarize a DDP's execution provenance, then explore hypothetical
//! modifications — removing DB tuples, cancelling user transitions — on
//! both the original and the summary.
//!
//! Run with `cargo run --release --example ddp_whatif`.

// Demo binary: a failed setup has no recovery path, so the expects
// double as the error report.
#![allow(clippy::expect_used)]

use prox::core::{SummarizeConfig, Summarizer};
use prox::datasets::{Ddp, DdpConfig};
use prox::provenance::{display, EvalOutcome, Valuation, ValuationClass};

fn outcome(o: &EvalOutcome) -> String {
    match o {
        EvalOutcome::Ddp { cost: Some(c) } => format!("feasible, best cost {c}"),
        EvalOutcome::Ddp { cost: None } => "no feasible execution".to_owned(),
        other => format!("{other:?}"),
    }
}

fn main() {
    let mut data = Ddp::generate(DdpConfig {
        db_vars: 10,
        cost_vars: 6,
        executions: 8,
        max_transitions: 5,
        relations: 2,
        seed: 8,
    });
    let p0 = data.provenance.clone();
    println!(
        "DDP provenance: {} executions, size {} (variables: {} db, {} cost).",
        p0.executions().len(),
        p0.size(),
        data.db_vars.len(),
        data.cost_vars.len(),
    );
    println!("  {}\n", display::render_ddp(&p0, &data.store));

    let valuations = data.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = data.constraints();
    let phi = data.phi();
    let config = SummarizeConfig {
        w_dist: 0.7,
        w_size: 0.3,
        max_steps: 10,
        phi,
        val_func: prox::core::ValFuncKind::DdpDiff,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    let result = summarizer
        .summarize(&p0, &valuations)
        .expect("valid config");
    println!(
        "Summary after {} steps: size {} → {}, distance {:.4}.",
        result.history.len(),
        result.initial_size,
        result.final_size(),
        result.final_distance,
    );
    println!("  {}\n", display::render_ddp(&result.summary, &data.store));

    // What-if 1: the database loses every tuple of relation R1.
    let relation = data.store.attr("relation");
    let r1 = data.store.value("R1");
    let r1_vars: Vec<_> = data
        .db_vars
        .iter()
        .copied()
        .filter(|&d| data.store.get(d).attr(relation) == Some(r1))
        .collect();
    let v1 = Valuation::cancel(&r1_vars).labeled("drop relation R1");
    // What-if 2: user transitions of maximal cost are never taken.
    let max_cost_var = data
        .cost_vars
        .iter()
        .copied()
        .max_by(|&a, &b| {
            p0.cost_of(a)
                .partial_cmp(&p0.cost_of(b))
                .expect("finite costs")
        })
        .expect("cost vars exist");
    let v2 = Valuation::cancel(&[max_cost_var]).labeled("skip priciest user step");

    for v in [v1, v2] {
        let lifted = v.lift_map(&result.mapping, &data.phi(), &data.store);
        println!("What if we {}?", v.label.as_deref().unwrap_or("?"));
        println!("  original: {}", outcome(&p0.eval(&v)));
        println!("  summary:  {}", outcome(&result.summary.eval(&lifted)));
    }
    println!(
        "\nOn the summary each question touches {} variables instead of {} —\n\
         the analyst explores FSM/database modifications on a far smaller object.",
        result.final_size(),
        result.initial_size,
    );
}
