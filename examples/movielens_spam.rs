//! Provisioning in the presence of spammers (the introduction's motivating
//! scenario): summarize a MovieLens workload, then compare exact and
//! summary-based provisioning when suspected spammers are cancelled —
//! measuring both the answer error and the evaluation-time saving.
//!
//! Run with `cargo run --release --example movielens_spam`.

// Demo binary: a failed setup has no recovery path, so the expects
// double as the error report.
#![allow(clippy::expect_used)]

use prox::core::{SummarizeConfig, Summarizer};
use prox::datasets::{MovieLens, MovieLensConfig};
use prox::provenance::{AggKind, Phi, Valuation, ValuationClass};
use prox::system::evaluator::time_valuations;

fn main() {
    let mut data = MovieLens::generate(MovieLensConfig {
        users: 40,
        movies: 8,
        ratings_per_user: 3,
        seed: 77,
    });
    let p0 = data.provenance(AggKind::Max);
    println!(
        "Generated {} ratings by {} users over {} movies (provenance size {}).",
        data.ratings.len(),
        data.users.len(),
        data.movies.len(),
        p0.size(),
    );

    // Summarize, caring mostly about provisioning accuracy.
    let valuations = data.valuations(ValuationClass::CancelSingleAnnotation);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        w_dist: 0.8,
        w_size: 0.2,
        max_steps: 25,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    let result = summarizer
        .summarize(&p0, &valuations)
        .expect("valid config");
    println!(
        "Summary: size {} → {} in {} steps, distance {:.4}.\n",
        result.initial_size,
        result.final_size(),
        result.history.len(),
        result.final_distance,
    );

    // Suspected spammers: the three users with the most 5-star ratings.
    let mut fives: Vec<_> = data
        .users
        .iter()
        .map(|&u| {
            let n = data
                .ratings
                .iter()
                .filter(|r| r.user == u && r.stars >= 5.0)
                .count();
            (u, n)
        })
        .collect();
    fives.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let spammers: Vec<_> = fives.iter().take(3).map(|&(u, _)| u).collect();
    println!(
        "Suspected spammers (most 5-star ratings): {}",
        spammers
            .iter()
            .map(|&u| data.store.name(u))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let cancel = Valuation::cancel(&spammers).labeled("cancel spammers");
    let lifted = cancel.lift(&result.mapping, Phi::Or, &data.store);
    let exact = p0.eval(&cancel);
    let approx = result.summary.eval(&lifted);

    println!("\n{:<26} {:>8} {:>10}", "Movie", "exact", "summary");
    let mut total_err = 0.0;
    for &(movie, v) in exact.coords() {
        let e = v.result();
        let a = approx.scalar_for(data.store.by_name(data.store.name(movie)).unwrap_or(movie));
        // After summarization the movie key is unchanged (users merged only).
        let a = a.unwrap_or_else(|| approx.scalar_for(movie).unwrap_or(0.0));
        total_err += (e - a).abs();
        println!("{:<26} {e:>8} {a:>10}", data.store.name(movie));
    }
    println!("total absolute error: {total_err}");

    // Usage-time comparison over the whole valuation class.
    let t_orig = time_valuations(&p0, &valuations, &data.store);
    let t_summ = time_valuations(&result.summary, &valuations, &data.store);
    println!(
        "\nEvaluating all {} valuations: original {} µs, summary {} µs (ratio {:.2}).",
        valuations.len(),
        t_orig / 1000,
        t_summ / 1000,
        t_summ as f64 / t_orig.max(1) as f64,
    );
}
