//! Quickstart: the paper's running example, end to end.
//!
//! Builds the "Match Point" / "Blue Jasmine" provenance of Example 4.2.3,
//! runs the summarization algorithm, and shows how the chosen mapping
//! (`{U1,U3} → Audience`) preserves every provisioning answer while the
//! alternative (`{U1,U2} → Female`) would not.
//!
//! Run with `cargo run --example quickstart`.

// Demo binary: a failed setup has no recovery path, so the expects
// double as the error report.
#![allow(clippy::expect_used)]

use prox::core::{ConstraintConfig, MergeRule, SummarizeConfig, Summarizer};
use prox::provenance::{
    display, AggKind, AggValue, AnnStore, Polynomial, ProvExpr, Tensor, Valuation, ValuationClass,
};

fn main() {
    // ── The annotation store: users with attributes, movies ────────────
    let mut store = AnnStore::new();
    let u1 = store.add_base_with("U1", "users", &[("gender", "F"), ("role", "audience")]);
    let u2 = store.add_base_with("U2", "users", &[("gender", "F"), ("role", "critic")]);
    let u3 = store.add_base_with("U3", "users", &[("gender", "M"), ("role", "audience")]);
    let match_point = store.add_base_with("MatchPoint", "movies", &[]);
    let blue_jasmine = store.add_base_with("BlueJasmine", "movies", &[]);

    // ── P₀ = U₁⊗(3,1) ⊕ U₂⊗(5,1) ⊕ U₃⊗(3,1) ⊕M U₂⊗(4,1) ───────────────
    let mut p0 = ProvExpr::new(AggKind::Max);
    for (u, score) in [(u1, 3.0), (u2, 5.0), (u3, 3.0)] {
        p0.push(
            match_point,
            Tensor::new(Polynomial::var(u), AggValue::single(score)),
        );
    }
    p0.push(
        blue_jasmine,
        Tensor::new(Polynomial::var(u2), AggValue::single(4.0)),
    );

    println!("Original provenance (size {}):", p0.size());
    println!("  {}\n", display::render_provexpr(&p0, &store));

    // ── Valuations: cancel a single (possibly spamming) user ───────────
    let users_dom = store.domain("users");
    let valuations =
        ValuationClass::CancelSingleAnnotation.generate(&store, &[u1, u2, u3], &[users_dom]);
    println!(
        "Valuation class: {} valuations (cancel a single user)\n",
        valuations.len()
    );

    // ── Summarize with wDist = 1 (distance only) ────────────────────────
    let constraints =
        ConstraintConfig::new().allow(users_dom, MergeRule::SharedAttribute { attrs: vec![] });
    let config = SummarizeConfig {
        w_dist: 1.0,
        w_size: 0.0,
        max_steps: 1,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut store, constraints, config);
    let result = summarizer
        .summarize(&p0, &valuations)
        .expect("valid configuration");

    let step = &result.history.steps[0];
    println!(
        "Algorithm chose to merge {:?} into {:?} (distance {:.3}, size {} → {}):",
        step.merged
            .iter()
            .map(|&a| store.name(a))
            .collect::<Vec<_>>(),
        store.name(step.target),
        step.distance,
        result.initial_size,
        result.final_size(),
    );
    println!("  {}\n", display::render_provexpr(&result.summary, &store));

    // ── Provisioning: what if U2 is a spammer? ──────────────────────────
    let cancel_u2 = Valuation::cancel(&[u2]).labeled("cancel U2");
    let lifted = cancel_u2.lift(&result.mapping, prox::provenance::Phi::Or, &store);
    let orig = p0.eval(&cancel_u2);
    let approx = result.summary.eval(&lifted);
    println!("Provisioning \"ignore U2's reviews\":");
    for &(movie, label) in &[(match_point, "MatchPoint"), (blue_jasmine, "BlueJasmine")] {
        println!(
            "  {label:<12} exact {}  |  from summary {}",
            orig.scalar_for(movie).unwrap_or(0.0),
            approx.scalar_for(movie).unwrap_or(0.0),
        );
    }
    println!("\nThe Audience summary answers every single-user cancellation exactly —");
    println!("that is why the algorithm preferred it over grouping the two female users.");
}
