//! Taxonomy-guided summarization of Wikipedia edit provenance
//! (Example 5.2.1): group editors by contribution level and pages by their
//! WordNet concepts, then read off trends like "top contributors prefer
//! guitarist pages".
//!
//! Run with `cargo run --release --example wikipedia_topics`.

// Demo binary: a failed setup has no recovery path, so the expects
// double as the error report.
#![allow(clippy::expect_used)]

use prox::core::{SummarizeConfig, Summarizer};
use prox::datasets::{Wikipedia, WikipediaConfig};
use prox::provenance::{display, ValuationClass};

fn main() {
    let mut data = Wikipedia::generate(WikipediaConfig {
        users: 16,
        pages: 12,
        edits_per_user: 2,
        major_prob: 0.6,
        seed: 51,
    });
    let p0 = data.provenance();
    println!(
        "Generated {} edits by {} users over {} pages (provenance size {}).",
        data.edits.len(),
        data.users.len(),
        data.pages.len(),
        p0.size(),
    );
    println!("First coordinates of the raw provenance:");
    let rendered = display::render_provexpr(&p0, &data.store);
    println!("  {}\n", &rendered.chars().take(240).collect::<String>());

    // Taxonomy-consistent "cancel single annotation" valuations.
    let valuations = data.valuations(ValuationClass::CancelSingleAnnotation);
    let constraints = data.constraints();
    let taxonomy = data.taxonomy.clone();
    let config = SummarizeConfig {
        w_dist: 0.5,
        w_size: 0.5,
        max_steps: 15,
        ..Default::default()
    };
    let mut summarizer =
        Summarizer::new(&mut data.store, constraints, config).with_taxonomy(&taxonomy);
    let result = summarizer
        .summarize(&p0, &valuations)
        .expect("valid config");

    println!(
        "Summary after {} steps: size {} → {}, distance {:.4}.",
        result.history.len(),
        result.initial_size,
        result.final_size(),
        result.final_distance,
    );
    println!(
        "  {}\n",
        display::render_provexpr(&result.summary, &data.store)
    );

    println!("Groups formed (name ⇐ members):");
    for step in &result.history.steps {
        let members: Vec<&str> = data
            .store
            .get(step.target)
            .base_members()
            .iter()
            .map(|&m| data.store.name(m))
            .collect();
        let concept = data
            .store
            .get(step.target)
            .concept
            .map(|c| taxonomy.name(prox::taxonomy::ConceptId(c)).to_owned());
        println!(
            "  {:<22} ⇐ {} {}",
            data.store.name(step.target),
            members.join(", "),
            concept
                .map(|c| format!("(concept {c})"))
                .unwrap_or_default(),
        );
    }
    println!(
        "\nPage groups are named by the members' lowest common WordNet subsumer\n\
         (e.g. a singer page and a guitarist page meet at wordnet_musician),\n\
         and only taxonomy-consistent valuations entered the distance."
    );
}
