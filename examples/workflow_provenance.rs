//! From application to summary, end to end: run the paper's movie-rating
//! workflow (Fig 2.1) to *produce* guarded provenance, then summarize it —
//! the complete PROX story in one program.
//!
//! Run with `cargo run --example workflow_provenance`.

// Demo binary: a failed setup has no recovery path, so the expects
// double as the error report.
#![allow(clippy::expect_used)]

use prox::core::{ConstraintConfig, MergeRule, SummarizeConfig, Summarizer};
use prox::provenance::{display, AggKind, AnnStore, Valuation, ValuationClass};
use prox::workflow::{demo_database, movie_workflow, movies_provenance, reviews_relation};

fn main() {
    let mut store = AnnStore::new();

    // ── The application: users, platforms, and the workflow ────────────
    let mut db = demo_database(
        &[
            ("U1", "audience"),
            ("U2", "critic"),
            ("U3", "audience"),
            ("U4", "audience"),
            ("U5", "critic"),
        ],
        &mut store,
    );
    let audience = reviews_relation(
        "audience_reviews",
        &[
            ("U1", "MatchPoint", 3.0),
            ("U1", "Friday", 4.0),
            ("U1", "PartyGirl", 2.0),
            ("U3", "MatchPoint", 3.0),
            ("U3", "Friday", 5.0),
            ("U3", "PartyGirl", 4.0),
            ("U4", "MatchPoint", 4.0),
            ("U4", "BlueJasmine", 3.0),
            ("U4", "Friday", 3.0),
        ],
    );
    let critic = reviews_relation(
        "critic_reviews",
        &[
            ("U2", "MatchPoint", 5.0),
            ("U2", "BlueJasmine", 4.0),
            ("U2", "Friday", 2.0),
            ("U5", "BlueJasmine", 5.0),
            ("U5", "PartyGirl", 3.0),
            ("U5", "MatchPoint", 4.0),
        ],
    );

    let workflow = movie_workflow();
    let ports = workflow
        .run(
            vec![
                ("audience_reviews".into(), audience),
                ("critic_reviews".into(), critic),
            ],
            &mut db,
            &mut store,
        )
        .expect("the workflow runs");

    println!("── After the run, the underlying database holds ──");
    println!("{}", db.get("Stats").expect("stats").render(&store));

    // ── The produced provenance (Example 2.2.1's structure) ─────────────
    let guarded = movies_provenance(&ports["sanitized"], &mut store, AggKind::Max);
    let p0 = guarded.clone();
    println!(
        "── Provenance produced by the workflow (size {}) ──",
        p0.size()
    );
    let rendered = display::render_provexpr(&p0, &store);
    println!("{}\n", rendered.chars().take(600).collect::<String>());

    // ── Summarize it ────────────────────────────────────────────────────
    // Example 3.1.1's first move: assume the statistics reliable and
    // discard the satisfied inequality terms, so user merges can shrink
    // the expression.
    let p0 = p0.discharge_guards(&Valuation::all_true());
    println!(
        "After discharging guards (statistics assumed reliable): size {}\n",
        p0.size()
    );

    let users_dom = store.domain("users");
    let user_anns: Vec<_> = ["U1", "U2", "U3", "U4", "U5"]
        .iter()
        .map(|u| store.by_name(u).expect("interned"))
        .collect();
    let valuations =
        ValuationClass::CancelSingleAnnotation.generate(&store, &user_anns, &[users_dom]);
    let constraints =
        ConstraintConfig::new().allow(users_dom, MergeRule::SharedAttribute { attrs: vec![] });
    let config = SummarizeConfig {
        w_dist: 0.8,
        w_size: 0.2,
        max_steps: 6,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut store, constraints, config);
    let result = summarizer
        .summarize(&p0, &valuations)
        .expect("valid config");

    println!(
        "── Summary: size {} → {} in {} steps, distance {:.4} ──",
        result.initial_size,
        result.final_size(),
        result.history.len(),
        result.final_distance,
    );
    println!("{}\n", display::render_provexpr(&result.summary, &store));

    // ── Provision through the guards ────────────────────────────────────
    // Cancelling U2's *stats* tuple breaks the activity guard and drops
    // the review even though U2 itself stays trusted.
    let s2 = store.by_name("S_U2").expect("stats annotation");
    let v = Valuation::cancel(&[s2]).labeled("reset U2's statistics");
    let mp = store.by_name("MatchPoint").expect("movie");
    println!("What if U2's statistics are reset (activity guard fails)?");
    println!(
        "  MatchPoint exact rating: {} (was {})",
        guarded.eval(&v).scalar_for(mp).unwrap_or(0.0),
        guarded
            .eval(&Valuation::all_true())
            .scalar_for(mp)
            .unwrap_or(0.0),
    );
}
