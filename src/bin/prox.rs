//! The PROX CLI: a terminal rendition of the web UI's three views
//! (selection → summarization → summary/provisioning, §7.2).
//!
//! Usage:
//!   prox demo                 — scripted walkthrough (non-interactive)
//!   prox summarize [flags]    — one-shot run with typed exit codes
//!   prox serve [flags]        — HTTP service (see `prox-serve`)
//!   prox bench diff <a> <b>   — manifest regression gate (see `prox-bench`)
//!   prox store <cmd> ...      — segment-store tools (see `prox-store`)
//!   prox                      — interactive shell
//!
//! One-shot flags: `--wdist <f>`, `--steps <n>`, `--tsize <n>`,
//! `--tdist <f>`, `--budget-ms <n>`, `--load <workload.json>`. Exit codes
//! classify failures: 2 = invalid input, 3 = budget exhausted before any
//! work, 4 = internal error. A budget that trips *mid-run* is not a
//! failure — the best-so-far summary is printed and the exit code is 0.
//!
//! Serve flags: `--addr <host:port>`, `--workers <n>`, `--queue <n>`,
//! `--cache <n>`, `--budget-ms <n>` (default wall-clock budget per
//! request), `--store <dir>` (attach a segment store; adds
//! `POST /summarize/store` and `GET /store/stats`), `--profile <path>`
//! (write folded-stack profile on exit). The server runs until
//! SIGINT/SIGTERM, then drains admitted connections and exits.
//!
//! Store tools: `prox store build --out <dir> [--users n] [--movies n]
//! [--unique n] [--logical n] [--seed n]` builds a synthetic
//! MovieLens-shaped store; `prox store stat <dir> [--sample n]` prints
//! its statistics (and optionally the first entries, decoded);
//! `prox store verify <dir>` runs the full offline checksum pass and
//! exits 2 on any corruption.
//!
//! Bench gate: `prox bench diff <baseline.json> <current.json>
//! [--out <path>]` compares two run manifests under per-metric
//! tolerances, writes `reports/regression.json`, and exits 1 on any
//! regression (2 when the manifests are not comparable).
//!
//! Interactive commands:
//! ```text
//!   search <needle>           — select movies by title substring
//!   genre <genre> [year]      — select movies by genre and year
//!   all                       — select every movie
//!   params                    — show the current summarization parameters
//!   set wdist|steps|tsize|tdist <value>
//!   summarize                 — run Algorithm 1 on the selection
//!   expr | groups             — summary subviews
//!   back | forward            — step through the algorithm
//!   insights                  — ranked group-vs-complement trends
//!   cancel <name> [...]       — provision: evaluate with annotations false
//!   cancelattr <attr>=<value> — provision: cancel an attribute value
//!   stats                     — print the observability registry snapshot
//!   quit
//! ```
//!
//! Observability: `--trace <path>` (or `PROX_TRACE=<path>`) writes a JSONL
//! span trace; either also enables the counters/spans behind `stats`.

use std::io::{self, BufRead, Write};
use std::path::Path;

use prox_core::{
    ConstraintConfig, ExecutionBudget, MergeRule, ProxError, SummarizeConfig, Summarizer,
};
use prox_datasets::{MovieLens, MovieLensConfig};
use prox_system::evaluator::{evaluate_both, Assignment};
use prox_system::render;
use prox_system::selection::{select, Selected, Selection};
use prox_system::session::Session;
use prox_system::summarization::{summarize, SummarizationRequest};

// Count this binary's heap through prox-obs so `prox stats`, `/metrics`,
// and `/metrics.json` report real live/peak/total allocation numbers.
#[global_allocator]
static ALLOC: prox_obs::CountingAlloc = prox_obs::CountingAlloc::system();

struct App {
    data: MovieLens,
    request: SummarizationRequest,
    selected: Option<Selected>,
    session: Option<Session>,
}

impl App {
    fn new() -> Self {
        App {
            data: MovieLens::generate(MovieLensConfig {
                users: 40,
                movies: 8,
                ratings_per_user: 2,
                seed: 2016,
            }),
            request: SummarizationRequest::default(),
            selected: None,
            session: None,
        }
    }

    fn select(&mut self, selection: Selection) -> String {
        let sel = select(&mut self.data, &selection, self.request.aggregation);
        let view = render::selection_view(&sel.provenance, &self.data.store);
        self.selected = Some(sel);
        self.session = None;
        view
    }

    fn summarize(&mut self) -> String {
        let Some(sel) = &self.selected else {
            return "select provenance first (try: all)".to_owned();
        };
        match summarize(&mut self.data, sel, self.request.clone()) {
            Ok(out) => {
                let steps = out.result.history.len();
                let session = Session::new(out);
                let view = render::expression_view(&session, &self.data.store);
                self.session = Some(session);
                format!("ran {steps} steps\n{view}")
            }
            Err(e) => format!("error: {e}"),
        }
    }

    fn provision(&mut self, assignment: Assignment) -> String {
        let Some(session) = &self.session else {
            return "summarize first".to_owned();
        };
        let original = &session.summarized().original;
        let summary = session.expression();
        let (orig, summ) = evaluate_both(original, summary, &assignment, &self.data.store);
        format!(
            "On the ORIGINAL provenance:\n{}\nOn the SUMMARY (approximate):\n{}",
            render::evaluation_view(&orig),
            render::evaluation_view(&summ),
        )
    }

    fn dispatch(&mut self, line: &str) -> Option<String> {
        let mut parts = line.split_whitespace();
        let cmd = parts.next()?;
        let rest: Vec<&str> = parts.collect();
        Some(match cmd {
            "search" => self.select(Selection::Search(rest.join(" "))),
            "genre" => {
                let genre = rest.first().map(|s| s.to_string());
                let year = rest.get(1).and_then(|s| s.parse().ok());
                self.select(Selection::GenreYear { genre, year })
            }
            "all" => self.select(Selection::All),
            "params" => render::summarization_view(&self.request),
            "set" => match (rest.first(), rest.get(1)) {
                (Some(&"wdist"), Some(v)) => {
                    self.request.w_dist = v.parse().unwrap_or(self.request.w_dist);
                    format!("wDist = {}", self.request.w_dist)
                }
                (Some(&"steps"), Some(v)) => {
                    self.request.steps = v.parse().unwrap_or(self.request.steps);
                    format!("steps = {}", self.request.steps)
                }
                (Some(&"tsize"), Some(v)) => {
                    self.request.target_size = v.parse().unwrap_or(self.request.target_size);
                    format!("TARGET-SIZE = {}", self.request.target_size)
                }
                (Some(&"tdist"), Some(v)) => {
                    self.request.target_dist = v.parse().unwrap_or(self.request.target_dist);
                    format!("TARGET-DIST = {}", self.request.target_dist)
                }
                _ => "usage: set wdist|steps|tsize|tdist <value>".to_owned(),
            },
            "summarize" => self.summarize(),
            "expr" => match &self.session {
                Some(s) => render::expression_view(s, &self.data.store),
                None => "summarize first".to_owned(),
            },
            "groups" => match &self.session {
                Some(s) => render::groups_view(&s.groups(&self.data.store)),
                None => "summarize first".to_owned(),
            },
            "back" => match &mut self.session {
                Some(s) => {
                    s.back();
                    render::expression_view(s, &self.data.store)
                }
                None => "summarize first".to_owned(),
            },
            "forward" => match &mut self.session {
                Some(s) => {
                    s.forward();
                    render::expression_view(s, &self.data.store)
                }
                None => "summarize first".to_owned(),
            },
            "insights" => match &self.session {
                Some(sess) => {
                    let ins = prox_system::insights(sess.summarized(), &self.data.store);
                    if ins.is_empty() {
                        "no group trends detected".to_owned()
                    } else {
                        ins.iter()
                            .take(10)
                            .map(|i| format!("  {}", i.statement))
                            .collect::<Vec<_>>()
                            .join("\n")
                    }
                }
                None => "summarize first".to_owned(),
            },
            "cancel" => self.provision(Assignment::FalseAnnotations(
                rest.iter().map(|s| s.to_string()).collect(),
            )),
            "cancelattr" => {
                let pairs: Vec<(String, String)> = rest
                    .iter()
                    .filter_map(|s| s.split_once('=').map(|(a, v)| (a.to_owned(), v.to_owned())))
                    .collect();
                self.provision(Assignment::FalseAttributes(pairs))
            }
            "stats" => {
                if prox_obs::enabled() {
                    format!(
                        "{}{}{}{}{}",
                        prox_obs::render_snapshot(),
                        render_window_stats(),
                        render_resilience_stats(),
                        render_store_stats(),
                        render_lint_stats()
                    )
                } else {
                    format!(
                        "observability is off — run with --trace <path> or PROX_TRACE=1\n{}{}",
                        render_store_stats(),
                        render_lint_stats()
                    )
                }
            }
            "help" => HELP.to_owned(),
            "quit" | "exit" => return None,
            other => format!("unknown command {other:?} — try `help`"),
        })
    }
}

const HELP: &str = "commands: search <s> | genre <g> [year] | all | params | \
set wdist|steps|tsize|tdist <v> | summarize | expr | groups | back | forward | \
cancel <names…> | cancelattr a=v | insights | stats | quit";

fn parse_flag<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ProxError> {
    value
        .parse()
        .map_err(|_| ProxError::config(format!("invalid value for {flag}: {value:?}")))
}

/// Render the sliding-window request statistics (the data behind
/// `GET /metrics`), or nothing when no requests have been observed.
fn render_window_stats() -> String {
    let stats = prox_obs::window::stats(prox_obs::deterministic_mode());
    if stats.endpoints.is_empty() && stats.shed == 0 {
        return String::new();
    }
    let mut out = format!("window ({}s):\n", stats.window_secs);
    if stats.shed > 0 {
        out.push_str(&format!("  {:<40} {}\n", "(shed admissions)", stats.shed));
    }
    for e in &stats.endpoints {
        out.push_str(&format!(
            "  {:<40} n={} err={} degraded={}",
            e.endpoint, e.requests, e.errors, e.degraded
        ));
        if e.cache_hits + e.cache_misses > 0 {
            out.push_str(&format!(
                " cache={}/{}",
                e.cache_hits,
                e.cache_hits + e.cache_misses
            ));
        }
        if let (Some(p50), Some(p95), Some(p99)) = (e.p50_us, e.p95_us, e.p99_us) {
            out.push_str(&format!(" p50={p50}us p95={p95}us p99={p99}us"));
        }
        out.push('\n');
    }
    out
}

/// Render the last `prox-lint --json` report (`reports/lint.json`), or
/// nothing when no report has been written — lint state is part of the
/// repo's health picture alongside the runtime counters.
fn render_lint_stats() -> String {
    let path = prox_bench::report::reports_dir().join("lint.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return String::new();
    };
    let Ok(report) = prox_obs::Json::parse(&text) else {
        return format!("lint: unreadable report at {}\n", path.display());
    };
    let count = |key: &str| {
        report
            .get(key)
            .and_then(prox_obs::Json::as_u64)
            .unwrap_or(0)
    };
    let arr_len = |key: &str| match report.get(key) {
        Some(prox_obs::Json::Arr(items)) => items.len(),
        _ => 0,
    };
    let mut out = format!(
        "lint (reports/lint.json):\n  {:<40} {}\n  {:<40} {}\n  {:<40} {}\n  {:<40} {}\n",
        "violations",
        arr_len("violations"),
        "allowlisted",
        count("allowed"),
        "files scanned",
        count("files_scanned"),
        "determinism-sensitive files",
        arr_len("det_files")
    );
    if let Some(entries) = report.get("violations_by_rule").and_then(|v| v.entries()) {
        let nonzero: Vec<String> = entries
            .iter()
            .filter_map(|(rule, n)| {
                let n = n.as_u64().unwrap_or(0);
                (n > 0).then(|| format!("{rule}={n}"))
            })
            .collect();
        if !nonzero.is_empty() {
            out.push_str(&format!(
                "  {:<40} {}\n",
                "findings by rule (incl. allowlisted)",
                nonzero.join(" ")
            ));
        }
    }
    out
}

/// Render the store section of the last bench store run
/// (`reports/manifest_store.json`), or nothing when no store manifest
/// has been written. The live-server counterpart is `GET /store/stats`.
fn render_store_stats() -> String {
    let path = prox_bench::report::reports_dir().join("manifest_store.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return String::new();
    };
    let Ok(manifest) = prox_obs::Json::parse(&text) else {
        return format!("store: unreadable manifest at {}\n", path.display());
    };
    let Some(store) = manifest.get("store") else {
        return String::new();
    };
    let u = |j: Option<&prox_obs::Json>, key: &str| {
        j.and_then(|v| v.get(key))
            .and_then(prox_obs::Json::as_u64)
            .unwrap_or(0)
    };
    let reader = store.get("reader");
    let cache = reader.and_then(|r| r.get("page_cache"));
    let dedup = reader
        .and_then(|r| r.get("dedup_ratio"))
        .and_then(|v| match v {
            prox_obs::Json::Float(f) => Some(*f),
            prox_obs::Json::UInt(n) => Some(*n as f64),
            _ => None,
        })
        .unwrap_or(0.0);
    let hits = u(cache, "hits");
    let misses = u(cache, "misses");
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    format!(
        "store (reports/manifest_store.json):\n\
         \x20 {:<40} {}\n\
         \x20 {:<40} {}\n\
         \x20 {:<40} {}\n\
         \x20 {:<40} {dedup:.2}x\n\
         \x20 {:<40} {hit_rate:.4} ({hits}/{})\n\
         \x20 {:<40} {} / {} ceiling\n",
        "logical expressions",
        u(reader, "logical_expressions"),
        "unique frames",
        u(reader, "unique_frames"),
        "segments",
        u(reader, "segments"),
        "dedup ratio",
        "page-cache hit rate",
        hits + misses,
        "page-cache peak bytes",
        u(cache, "peak_bytes"),
        u(Some(store), "cache_ceiling_bytes"),
    )
}

/// `prox store build|stat|verify`: segment-store tools (see `prox-store`).
fn store_cmd(args: &[String]) -> Result<String, ProxError> {
    const USAGE: &str = "usage: prox store build --out <dir> [--users n] [--movies n] \
                         [--unique n] [--logical n] [--seed n] | \
                         prox store stat <dir> [--sample n] | \
                         prox store verify <dir>";
    let sub = args
        .first()
        .ok_or_else(|| ProxError::config(USAGE))?
        .as_str();
    match sub {
        "build" => {
            let mut spec = prox_store::SynthSpec::quick(2016);
            let mut out: Option<String> = None;
            let mut ix = 1;
            while ix < args.len() {
                let flag = args[ix].as_str();
                let value = args
                    .get(ix + 1)
                    .ok_or_else(|| ProxError::config(format!("{flag} requires a value")))?;
                match flag {
                    "--out" => out = Some(value.clone()),
                    "--users" => spec.users = parse_flag(flag, value)?,
                    "--movies" => spec.movies = parse_flag(flag, value)?,
                    "--unique" => spec.unique_frames = parse_flag(flag, value)?,
                    "--logical" => spec.logical = parse_flag(flag, value)?,
                    "--seed" => spec.seed = parse_flag(flag, value)?,
                    other => {
                        return Err(ProxError::config(format!(
                            "unknown flag {other:?} — {USAGE}"
                        )))
                    }
                }
                ix += 2;
            }
            let out =
                out.ok_or_else(|| ProxError::config(format!("--out is required — {USAGE}")))?;
            let report = prox_store::build_synthetic(Path::new(&out), &spec)?;
            Ok(format!(
                "built {out}: {} logical expressions, {} unique frames \
                 ({:.2}x dedup), {} segments, {} payload bytes",
                report.summary.logical,
                report.summary.unique,
                report.summary.dedup_ratio(),
                report.summary.segments.len(),
                report.summary.payload_bytes,
            ))
        }
        "stat" => {
            let dir = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| ProxError::config(format!("stat needs a <dir> — {USAGE}")))?;
            let mut sample = 0usize;
            let mut ix = 2;
            while ix < args.len() {
                match args[ix].as_str() {
                    "--sample" => {
                        let value = args
                            .get(ix + 1)
                            .ok_or_else(|| ProxError::config("--sample requires a value"))?;
                        sample = parse_flag("--sample", value)?;
                        ix += 2;
                    }
                    other => {
                        return Err(ProxError::config(format!(
                            "unknown flag {other:?} — {USAGE}"
                        )))
                    }
                }
            }
            let mut store = prox_store::SegmentStore::open(Path::new(dir))?;
            let mut out = String::new();
            if sample > 0 {
                // A step-capped scan decodes exactly the first `sample`
                // log records; budget polling makes the cap exact.
                let budget = prox_robust::ExecutionBudget::unlimited().with_max_steps(sample);
                let mut session = budget.start();
                let anns = store.anns().clone();
                let mut lines = Vec::new();
                store.scan(&mut session, &mut |object, tensor, n| {
                    lines.push(
                        prox_store::entry_to_json(&anns, object, &tensor, n)
                            .sorted()
                            .render(),
                    );
                    Ok(())
                })?;
                for line in lines {
                    out.push_str(&line);
                    out.push('\n');
                }
            }
            out.push_str(&store.stats_json().sorted().pretty());
            Ok(out)
        }
        "verify" => {
            let dir = args
                .get(1)
                .ok_or_else(|| ProxError::config(format!("verify needs a <dir> — {USAGE}")))?;
            let report = prox_store::verify_store(Path::new(dir))?;
            Ok(format!(
                "ok: {}\n{}",
                dir,
                report.to_json().sorted().pretty()
            ))
        }
        other => Err(ProxError::config(format!(
            "unknown store command {other:?} — {USAGE}"
        ))),
    }
}

/// `prox summarize [flags]`: one run, report on stdout, typed exit code.
fn one_shot_summarize(args: &[String]) -> Result<String, ProxError> {
    let mut request = SummarizationRequest::default();
    let mut load: Option<String> = None;
    let mut ix = 0;
    while ix < args.len() {
        let flag = args[ix].as_str();
        let value = args
            .get(ix + 1)
            .ok_or_else(|| ProxError::config(format!("{flag} requires a value")))?;
        match flag {
            "--wdist" => request.w_dist = parse_flag(flag, value)?,
            "--steps" => request.steps = parse_flag(flag, value)?,
            "--tsize" => request.target_size = parse_flag(flag, value)?,
            "--tdist" => request.target_dist = parse_flag(flag, value)?,
            "--budget-ms" => {
                let ms: u64 = parse_flag(flag, value)?;
                request.budget = ExecutionBudget::unlimited().with_deadline_ms(ms);
            }
            "--load" => load = Some(value.clone()),
            other => {
                return Err(ProxError::config(format!(
                    "unknown flag {other:?} — see `prox summarize` usage in --help"
                )))
            }
        }
        ix += 2;
    }

    let result = match load {
        Some(path) => {
            // A saved workload carries its own store; merge within each
            // domain on any shared attribute.
            let mut workload = prox_provenance::load_workload(Path::new(&path))?;
            let p0 = workload.provenance.clone().ok_or_else(|| {
                ProxError::unsupported("one-shot summarize needs an aggregated-provenance workload")
            })?;
            let mut domains = Vec::new();
            for (_, ann) in workload.store.iter() {
                if !domains.contains(&ann.domain) {
                    domains.push(ann.domain);
                }
            }
            let mut constraints = ConstraintConfig::new();
            for &d in &domains {
                constraints = constraints.allow(d, MergeRule::SharedAttribute { attrs: vec![] });
            }
            let anns = p0.annotations();
            let valuations = request
                .valuation_class
                .generate(&workload.store, &anns, &domains);
            let config = SummarizeConfig {
                w_dist: request.w_dist,
                w_size: 1.0 - request.w_dist,
                target_dist: request.target_dist,
                target_size: request.target_size,
                max_steps: request.steps,
                val_func: request.val_func,
                budget: request.budget.clone(),
                ..Default::default()
            };
            let mut summarizer = Summarizer::new(&mut workload.store, constraints, config);
            summarizer.summarize(&p0, &valuations)?
        }
        None => {
            let mut data = MovieLens::generate(MovieLensConfig {
                users: 40,
                movies: 8,
                ratings_per_user: 2,
                seed: 2016,
            });
            let sel = select(&mut data, &Selection::All, request.aggregation);
            summarize(&mut data, &sel, request)?.result
        }
    };
    Ok(format!(
        "steps: {}\nsize: {} -> {}\ndistance: {:.4}\nstop: {:?}",
        result.history.len(),
        result.initial_size,
        result.final_size(),
        result.final_distance,
        result.stop_reason,
    ))
}

/// Render the serve-layer resilience picture — worker supervision,
/// circuit breaker transitions, and per-tenant rate limiting — or nothing
/// when no resilience event has registered (the common healthy case).
fn render_resilience_stats() -> String {
    let counter = |name: &str| prox_obs::counter_value(name).unwrap_or(0);
    let panics = counter("serve/worker_panics");
    let opened = counter("serve/breaker_opened");
    let half_open = counter("serve/breaker_half_open");
    let closed = counter("serve/breaker_closed");
    let rate_limited = counter("serve/rate_limited");
    let health = prox_obs::gauge_value("serve/health_state");
    if panics == 0 && opened == 0 && rate_limited == 0 && health.is_none() {
        return String::new();
    }
    let state = match health.unwrap_or(0) {
        1 => "degraded",
        2 => "draining",
        _ => "healthy",
    };
    let mut out = String::from("resilience:\n");
    out.push_str(&format!("  {:<40} {state}\n", "health state"));
    out.push_str(&format!("  {:<40} {panics}\n", "worker panics recovered"));
    out.push_str(&format!(
        "  {:<40} opened={opened} half_open={half_open} closed={closed}\n",
        "breaker transitions"
    ));
    out.push_str(&format!("  {:<40} {rate_limited}\n", "rate-limited (429)"));
    for (tenant, denied) in prox_serve::ratelimit::tenant_denials() {
        out.push_str(&format!("    429 tenant {tenant:<32} {denied}\n"));
    }
    out
}

/// `prox serve [flags]`: run the HTTP service until SIGINT/SIGTERM.
fn serve(args: &[String]) -> Result<(), ProxError> {
    let mut config = prox_serve::ServerConfig::default();
    let mut profile: Option<String> = None;
    let mut ix = 0;
    while ix < args.len() {
        let flag = args[ix].as_str();
        let value = args
            .get(ix + 1)
            .ok_or_else(|| ProxError::config(format!("{flag} requires a value")))?;
        match flag {
            "--addr" => config.addr = value.clone(),
            "--workers" => config.workers = parse_flag(flag, value)?,
            "--queue" => config.queue_capacity = parse_flag(flag, value)?,
            "--cache" => config.cache_capacity = parse_flag(flag, value)?,
            "--budget-ms" => config.default_budget_ms = parse_flag(flag, value)?,
            "--trace-seed" => config.trace_seed = parse_flag(flag, value)?,
            "--sample-rate" => config.trace_sample_rate = parse_flag(flag, value)?,
            "--trace-ring" => config.trace_capacity = parse_flag(flag, value)?,
            "--tenant-rate" => config.tenant_rate = parse_flag(flag, value)?,
            "--tenant-burst" => config.tenant_burst = parse_flag(flag, value)?,
            "--breaker-threshold" => config.breaker_threshold = parse_flag(flag, value)?,
            "--store" => config.store_dir = Some(value.clone()),
            "--profile" => profile = Some(value.clone()),
            other => {
                return Err(ProxError::config(format!(
                    "unknown flag {other:?} — usage: prox serve [--addr host:port] \
                     [--workers n] [--queue n] [--cache n] [--budget-ms n] \
                     [--trace-seed n] [--sample-rate f] [--trace-ring n] \
                     [--tenant-rate f] [--tenant-burst f] [--breaker-threshold n] \
                     [--store dir] [--profile path]"
                )))
            }
        }
        ix += 2;
    }
    // `/metrics` and the cache hit/miss counters live in the prox-obs
    // registry; a server without them would be flying blind.
    prox_obs::set_enabled(true);
    if let Some(path) = &profile {
        // Worker span stacks fold into flamegraph input, written on
        // shutdown. Boundary mode keeps deterministic runs reproducible.
        if prox_obs::deterministic_mode() {
            prox_obs::prof::enable_boundary();
        } else {
            prox_obs::prof::enable_interval(std::time::Duration::from_millis(1));
        }
        println!("profiling to {path} (folded stacks, written on shutdown)");
    }
    prox_serve::install_signal_handlers();
    let has_store = config.store_dir.is_some();
    let handle = prox_serve::Server::start(config)?;
    println!("prox-serve listening on http://{}", handle.addr());
    println!(
        "endpoints: POST /summarize | POST /provision | GET /datasets | \
         GET /healthz | GET /metrics | GET /metrics.json | GET /debug/traces[/<id>]"
    );
    if has_store {
        println!("store endpoints: POST /summarize/store | GET /store/stats");
    }
    let shutdown = handle.shutdown_flag();
    while !prox_serve::signalled() && !shutdown.is_cancelled() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("shutting down: draining admitted connections");
    handle.shutdown();
    if let Some(path) = &profile {
        prox_obs::prof::disable();
        match prox_obs::prof::write_folded(path) {
            Ok(()) => println!("profile (folded stacks) written to {path}"),
            Err(e) => eprintln!("cannot write profile {path}: {e}"),
        }
    }
    Ok(())
}

/// `prox bench diff <baseline> <current> [--out <path>]`: the manifest
/// regression gate. Exits 0 (ok), 1 (regression), or 2 (input error).
fn bench_diff(args: &[String]) -> i32 {
    let mut out: Option<String> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut ix = 0;
    while ix < args.len() {
        if args[ix] == "--out" {
            let Some(value) = args.get(ix + 1) else {
                eprintln!("--out requires a path");
                return 2;
            };
            out = Some(value.clone());
            ix += 2;
        } else {
            positional.push(args[ix].as_str());
            ix += 1;
        }
    }
    let [baseline, current] = positional[..] else {
        eprintln!("usage: prox bench diff <baseline.json> <current.json> [--out <path>]");
        return 2;
    };
    let out = out.unwrap_or_else(|| {
        prox_bench::report::reports_dir()
            .join("regression.json")
            .to_string_lossy()
            .into_owned()
    });
    prox_bench::diff::run_diff(baseline, current, &out)
}

fn demo() {
    let mut app = App::new();
    let script = [
        "all",
        "params",
        "set wdist 0.7",
        "set steps 8",
        "summarize",
        "groups",
        "back",
        "forward",
        "cancelattr gender=M",
        "insights",
        "stats",
    ];
    for cmd in script {
        println!("prox> {cmd}");
        match app.dispatch(cmd) {
            Some(out) => println!("{out}"),
            None => break,
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--trace <path>` anywhere on the command line; PROX_TRACE also works.
    if let Some(ix) = args.iter().position(|a| a == "--trace") {
        if ix + 1 >= args.len() {
            eprintln!("--trace requires a path");
            std::process::exit(2);
        }
        let path = args.remove(ix + 1);
        args.remove(ix);
        if let Err(e) = prox_obs::install_sink(&path) {
            eprintln!("cannot open trace file {path}: {e}");
            std::process::exit(2);
        }
    }
    prox_obs::init_from_env();
    prox_robust::fault::init_from_env();

    if args.first().map(String::as_str) == Some("demo") {
        demo();
        prox_obs::flush_sink();
        return;
    }
    if args.first().map(String::as_str) == Some("bench") {
        match args.get(1).map(String::as_str) {
            Some("diff") => std::process::exit(bench_diff(&args[2..])),
            _ => {
                eprintln!("usage: prox bench diff <baseline.json> <current.json> [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("store") {
        match store_cmd(&args[1..]) {
            Ok(report) => {
                println!("{report}");
                prox_obs::flush_sink();
            }
            Err(e) => {
                eprintln!("error: {e}");
                prox_obs::flush_sink();
                std::process::exit(e.kind().exit_code());
            }
        }
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        match serve(&args[1..]) {
            Ok(()) => prox_obs::flush_sink(),
            Err(e) => {
                eprintln!("error: {e}");
                prox_obs::flush_sink();
                std::process::exit(e.kind().exit_code());
            }
        }
        return;
    }
    if args.first().map(String::as_str) == Some("summarize") {
        match one_shot_summarize(&args[1..]) {
            Ok(report) => {
                println!("{report}");
                prox_obs::flush_sink();
            }
            Err(e) => {
                eprintln!("error: {e}");
                prox_obs::flush_sink();
                std::process::exit(e.kind().exit_code());
            }
        }
        return;
    }
    println!("PROX — approximated summarization of data provenance");
    println!("{HELP}");
    let stdin = io::stdin();
    let mut app = App::new();
    loop {
        print!("prox> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match app.dispatch(line) {
            Some(out) => println!("{out}"),
            None => break,
        }
    }
    prox_obs::flush_sink();
}
