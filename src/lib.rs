//! # prox
//!
//! Umbrella crate for the PROX reproduction (*Approximated Summarization of
//! Data Provenance*, EDBT 2016): re-exports the workspace crates under one
//! roof so examples and downstream users need a single dependency.
//!
//! * [`provenance`] — the semiring provenance substrate (`N[Ann]`
//!   polynomials, aggregation tensors, valuations, mappings, DDPs);
//! * [`taxonomy`] — concept DAGs with Wu–Palmer relatedness;
//! * [`core`] — the summarization algorithm (distance, sampling,
//!   equivalence grouping, Algorithm 1);
//! * [`cluster`] — the clustering and random baselines;
//! * [`datasets`] — seeded synthetic MovieLens / Wikipedia / DDP
//!   generators;
//! * [`system`] — the PROX system services (selection, summarization,
//!   provisioning);
//! * [`serve`] — the concurrent service layer: a std-only HTTP server
//!   with admission control, budgeted requests, and a summary cache;
//! * [`workflow`] — the Chapter-2 workflow substrate that *produces*
//!   provenance (annotated relations, modules, the Fig 2.1 pipeline);
//! * [`obs`] — the zero-dependency observability layer (span timers,
//!   counters, JSONL trace sink) instrumenting all of the above;
//! * [`robust`] — typed errors ([`robust::ProxError`]), execution budgets
//!   with an anytime best-so-far contract, and the seeded `PROX_FAULT`
//!   fault-injection harness.
//!
//! See the repository README for a walkthrough and `DESIGN.md` for the
//! system inventory; run `cargo run --example quickstart` for a first
//! taste.

pub use prox_bench as bench;
pub use prox_cluster as cluster;
pub use prox_core as core;
pub use prox_datasets as datasets;
pub use prox_obs as obs;
pub use prox_provenance as provenance;
pub use prox_robust as robust;
pub use prox_serve as serve;
pub use prox_system as system;
pub use prox_taxonomy as taxonomy;
pub use prox_workflow as workflow;
