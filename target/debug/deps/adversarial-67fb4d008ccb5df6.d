/root/repo/target/debug/deps/adversarial-67fb4d008ccb5df6.d: tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-67fb4d008ccb5df6: tests/adversarial.rs

tests/adversarial.rs:
