/root/repo/target/debug/deps/cache_counters-622bcd0fd69bd19c.d: crates/serve/tests/cache_counters.rs

/root/repo/target/debug/deps/cache_counters-622bcd0fd69bd19c: crates/serve/tests/cache_counters.rs

crates/serve/tests/cache_counters.rs:
