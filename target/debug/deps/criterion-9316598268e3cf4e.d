/root/repo/target/debug/deps/criterion-9316598268e3cf4e.d: /root/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-9316598268e3cf4e.rlib: /root/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-9316598268e3cf4e.rmeta: /root/stubs/criterion/src/lib.rs

/root/stubs/criterion/src/lib.rs:
