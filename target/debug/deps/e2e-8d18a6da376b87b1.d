/root/repo/target/debug/deps/e2e-8d18a6da376b87b1.d: crates/serve/tests/e2e.rs

/root/repo/target/debug/deps/e2e-8d18a6da376b87b1: crates/serve/tests/e2e.rs

crates/serve/tests/e2e.rs:
