/root/repo/target/debug/deps/end_to_end-46352a2e77db68f7.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-46352a2e77db68f7: tests/end_to_end.rs

tests/end_to_end.rs:
