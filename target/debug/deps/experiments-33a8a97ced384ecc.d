/root/repo/target/debug/deps/experiments-33a8a97ced384ecc.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-33a8a97ced384ecc: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
