/root/repo/target/debug/deps/fault_injection-f7e5efa5d04341d1.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-f7e5efa5d04341d1: tests/fault_injection.rs

tests/fault_injection.rs:
