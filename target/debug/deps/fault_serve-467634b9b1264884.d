/root/repo/target/debug/deps/fault_serve-467634b9b1264884.d: crates/serve/tests/fault_serve.rs

/root/repo/target/debug/deps/fault_serve-467634b9b1264884: crates/serve/tests/fault_serve.rs

crates/serve/tests/fault_serve.rs:
