/root/repo/target/debug/deps/manifest_determinism-471348dd513cbc5c.d: crates/bench/tests/manifest_determinism.rs

/root/repo/target/debug/deps/manifest_determinism-471348dd513cbc5c: crates/bench/tests/manifest_determinism.rs

crates/bench/tests/manifest_determinism.rs:
