/root/repo/target/debug/deps/paper_examples-66576a1ff287d2d9.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-66576a1ff287d2d9: tests/paper_examples.rs

tests/paper_examples.rs:
