/root/repo/target/debug/deps/properties-63a6a06983f578b3.d: tests/properties.rs

/root/repo/target/debug/deps/properties-63a6a06983f578b3: tests/properties.rs

tests/properties.rs:
