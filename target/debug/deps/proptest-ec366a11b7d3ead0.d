/root/repo/target/debug/deps/proptest-ec366a11b7d3ead0.d: /root/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ec366a11b7d3ead0.rlib: /root/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ec366a11b7d3ead0.rmeta: /root/stubs/proptest/src/lib.rs

/root/stubs/proptest/src/lib.rs:
