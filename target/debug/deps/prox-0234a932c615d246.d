/root/repo/target/debug/deps/prox-0234a932c615d246.d: src/bin/prox.rs

/root/repo/target/debug/deps/prox-0234a932c615d246: src/bin/prox.rs

src/bin/prox.rs:
