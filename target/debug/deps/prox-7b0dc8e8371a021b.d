/root/repo/target/debug/deps/prox-7b0dc8e8371a021b.d: src/bin/prox.rs

/root/repo/target/debug/deps/prox-7b0dc8e8371a021b: src/bin/prox.rs

src/bin/prox.rs:
