/root/repo/target/debug/deps/prox-c47f399dff5f9c36.d: src/lib.rs

/root/repo/target/debug/deps/prox-c47f399dff5f9c36: src/lib.rs

src/lib.rs:
