/root/repo/target/debug/deps/prox-db52a19d5f568162.d: src/lib.rs

/root/repo/target/debug/deps/libprox-db52a19d5f568162.rlib: src/lib.rs

/root/repo/target/debug/deps/libprox-db52a19d5f568162.rmeta: src/lib.rs

src/lib.rs:
