/root/repo/target/debug/deps/prox_bench-b65074a4f2a45170.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/manifest.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/series.rs crates/bench/src/serve_load.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/prox_bench-b65074a4f2a45170: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/manifest.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/series.rs crates/bench/src/serve_load.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/manifest.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/series.rs:
crates/bench/src/serve_load.rs:
crates/bench/src/workload.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
