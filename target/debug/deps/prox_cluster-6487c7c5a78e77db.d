/root/repo/target/debug/deps/prox_cluster-6487c7c5a78e77db.d: crates/cluster/src/lib.rs crates/cluster/src/dendrogram.rs crates/cluster/src/features.rs crates/cluster/src/hac.rs crates/cluster/src/linkage.rs crates/cluster/src/matrix.rs crates/cluster/src/pearson.rs crates/cluster/src/random.rs crates/cluster/src/replay.rs

/root/repo/target/debug/deps/libprox_cluster-6487c7c5a78e77db.rlib: crates/cluster/src/lib.rs crates/cluster/src/dendrogram.rs crates/cluster/src/features.rs crates/cluster/src/hac.rs crates/cluster/src/linkage.rs crates/cluster/src/matrix.rs crates/cluster/src/pearson.rs crates/cluster/src/random.rs crates/cluster/src/replay.rs

/root/repo/target/debug/deps/libprox_cluster-6487c7c5a78e77db.rmeta: crates/cluster/src/lib.rs crates/cluster/src/dendrogram.rs crates/cluster/src/features.rs crates/cluster/src/hac.rs crates/cluster/src/linkage.rs crates/cluster/src/matrix.rs crates/cluster/src/pearson.rs crates/cluster/src/random.rs crates/cluster/src/replay.rs

crates/cluster/src/lib.rs:
crates/cluster/src/dendrogram.rs:
crates/cluster/src/features.rs:
crates/cluster/src/hac.rs:
crates/cluster/src/linkage.rs:
crates/cluster/src/matrix.rs:
crates/cluster/src/pearson.rs:
crates/cluster/src/random.rs:
crates/cluster/src/replay.rs:
