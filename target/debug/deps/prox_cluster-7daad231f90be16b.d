/root/repo/target/debug/deps/prox_cluster-7daad231f90be16b.d: crates/cluster/src/lib.rs crates/cluster/src/dendrogram.rs crates/cluster/src/features.rs crates/cluster/src/hac.rs crates/cluster/src/linkage.rs crates/cluster/src/matrix.rs crates/cluster/src/pearson.rs crates/cluster/src/random.rs crates/cluster/src/replay.rs

/root/repo/target/debug/deps/prox_cluster-7daad231f90be16b: crates/cluster/src/lib.rs crates/cluster/src/dendrogram.rs crates/cluster/src/features.rs crates/cluster/src/hac.rs crates/cluster/src/linkage.rs crates/cluster/src/matrix.rs crates/cluster/src/pearson.rs crates/cluster/src/random.rs crates/cluster/src/replay.rs

crates/cluster/src/lib.rs:
crates/cluster/src/dendrogram.rs:
crates/cluster/src/features.rs:
crates/cluster/src/hac.rs:
crates/cluster/src/linkage.rs:
crates/cluster/src/matrix.rs:
crates/cluster/src/pearson.rs:
crates/cluster/src/random.rs:
crates/cluster/src/replay.rs:
