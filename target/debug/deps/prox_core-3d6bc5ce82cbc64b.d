/root/repo/target/debug/deps/prox_core-3d6bc5ce82cbc64b.d: crates/core/src/lib.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/constraints.rs crates/core/src/distance.rs crates/core/src/equivalence.rs crates/core/src/hardness.rs crates/core/src/history.rs crates/core/src/optimal.rs crates/core/src/sampler.rs crates/core/src/score.rs crates/core/src/summarize.rs crates/core/src/val_func.rs

/root/repo/target/debug/deps/prox_core-3d6bc5ce82cbc64b: crates/core/src/lib.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/constraints.rs crates/core/src/distance.rs crates/core/src/equivalence.rs crates/core/src/hardness.rs crates/core/src/history.rs crates/core/src/optimal.rs crates/core/src/sampler.rs crates/core/src/score.rs crates/core/src/summarize.rs crates/core/src/val_func.rs

crates/core/src/lib.rs:
crates/core/src/candidates.rs:
crates/core/src/config.rs:
crates/core/src/constraints.rs:
crates/core/src/distance.rs:
crates/core/src/equivalence.rs:
crates/core/src/hardness.rs:
crates/core/src/history.rs:
crates/core/src/optimal.rs:
crates/core/src/sampler.rs:
crates/core/src/score.rs:
crates/core/src/summarize.rs:
crates/core/src/val_func.rs:
