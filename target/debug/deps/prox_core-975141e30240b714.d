/root/repo/target/debug/deps/prox_core-975141e30240b714.d: crates/core/src/lib.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/constraints.rs crates/core/src/distance.rs crates/core/src/equivalence.rs crates/core/src/hardness.rs crates/core/src/history.rs crates/core/src/optimal.rs crates/core/src/sampler.rs crates/core/src/score.rs crates/core/src/summarize.rs crates/core/src/val_func.rs

/root/repo/target/debug/deps/libprox_core-975141e30240b714.rlib: crates/core/src/lib.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/constraints.rs crates/core/src/distance.rs crates/core/src/equivalence.rs crates/core/src/hardness.rs crates/core/src/history.rs crates/core/src/optimal.rs crates/core/src/sampler.rs crates/core/src/score.rs crates/core/src/summarize.rs crates/core/src/val_func.rs

/root/repo/target/debug/deps/libprox_core-975141e30240b714.rmeta: crates/core/src/lib.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/constraints.rs crates/core/src/distance.rs crates/core/src/equivalence.rs crates/core/src/hardness.rs crates/core/src/history.rs crates/core/src/optimal.rs crates/core/src/sampler.rs crates/core/src/score.rs crates/core/src/summarize.rs crates/core/src/val_func.rs

crates/core/src/lib.rs:
crates/core/src/candidates.rs:
crates/core/src/config.rs:
crates/core/src/constraints.rs:
crates/core/src/distance.rs:
crates/core/src/equivalence.rs:
crates/core/src/hardness.rs:
crates/core/src/history.rs:
crates/core/src/optimal.rs:
crates/core/src/sampler.rs:
crates/core/src/score.rs:
crates/core/src/summarize.rs:
crates/core/src/val_func.rs:
