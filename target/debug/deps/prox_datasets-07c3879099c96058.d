/root/repo/target/debug/deps/prox_datasets-07c3879099c96058.d: crates/datasets/src/lib.rs crates/datasets/src/ddp.rs crates/datasets/src/movielens.rs crates/datasets/src/names.rs crates/datasets/src/wikipedia.rs

/root/repo/target/debug/deps/prox_datasets-07c3879099c96058: crates/datasets/src/lib.rs crates/datasets/src/ddp.rs crates/datasets/src/movielens.rs crates/datasets/src/names.rs crates/datasets/src/wikipedia.rs

crates/datasets/src/lib.rs:
crates/datasets/src/ddp.rs:
crates/datasets/src/movielens.rs:
crates/datasets/src/names.rs:
crates/datasets/src/wikipedia.rs:
