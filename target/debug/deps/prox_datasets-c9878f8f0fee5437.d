/root/repo/target/debug/deps/prox_datasets-c9878f8f0fee5437.d: crates/datasets/src/lib.rs crates/datasets/src/ddp.rs crates/datasets/src/movielens.rs crates/datasets/src/names.rs crates/datasets/src/wikipedia.rs

/root/repo/target/debug/deps/libprox_datasets-c9878f8f0fee5437.rlib: crates/datasets/src/lib.rs crates/datasets/src/ddp.rs crates/datasets/src/movielens.rs crates/datasets/src/names.rs crates/datasets/src/wikipedia.rs

/root/repo/target/debug/deps/libprox_datasets-c9878f8f0fee5437.rmeta: crates/datasets/src/lib.rs crates/datasets/src/ddp.rs crates/datasets/src/movielens.rs crates/datasets/src/names.rs crates/datasets/src/wikipedia.rs

crates/datasets/src/lib.rs:
crates/datasets/src/ddp.rs:
crates/datasets/src/movielens.rs:
crates/datasets/src/names.rs:
crates/datasets/src/wikipedia.rs:
