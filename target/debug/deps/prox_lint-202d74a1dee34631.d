/root/repo/target/debug/deps/prox_lint-202d74a1dee34631.d: crates/lint/src/lib.rs crates/lint/src/allow.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scope.rs

/root/repo/target/debug/deps/libprox_lint-202d74a1dee34631.rlib: crates/lint/src/lib.rs crates/lint/src/allow.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scope.rs

/root/repo/target/debug/deps/libprox_lint-202d74a1dee34631.rmeta: crates/lint/src/lib.rs crates/lint/src/allow.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scope.rs

crates/lint/src/lib.rs:
crates/lint/src/allow.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
crates/lint/src/scope.rs:
