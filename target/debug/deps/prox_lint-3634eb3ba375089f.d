/root/repo/target/debug/deps/prox_lint-3634eb3ba375089f.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/prox_lint-3634eb3ba375089f: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
