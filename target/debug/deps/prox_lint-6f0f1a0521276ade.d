/root/repo/target/debug/deps/prox_lint-6f0f1a0521276ade.d: crates/lint/src/lib.rs crates/lint/src/allow.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scope.rs

/root/repo/target/debug/deps/prox_lint-6f0f1a0521276ade: crates/lint/src/lib.rs crates/lint/src/allow.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs crates/lint/src/scope.rs

crates/lint/src/lib.rs:
crates/lint/src/allow.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
crates/lint/src/scope.rs:
