/root/repo/target/debug/deps/prox_lint-942e144e00d0b895.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/prox_lint-942e144e00d0b895: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
