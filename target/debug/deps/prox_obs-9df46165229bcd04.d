/root/repo/target/debug/deps/prox_obs-9df46165229bcd04.d: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/gauge.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/prom.rs crates/obs/src/registry.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/timer.rs crates/obs/src/trace.rs crates/obs/src/window.rs

/root/repo/target/debug/deps/prox_obs-9df46165229bcd04: crates/obs/src/lib.rs crates/obs/src/counter.rs crates/obs/src/gauge.rs crates/obs/src/histogram.rs crates/obs/src/json.rs crates/obs/src/prom.rs crates/obs/src/registry.rs crates/obs/src/sink.rs crates/obs/src/span.rs crates/obs/src/timer.rs crates/obs/src/trace.rs crates/obs/src/window.rs

crates/obs/src/lib.rs:
crates/obs/src/counter.rs:
crates/obs/src/gauge.rs:
crates/obs/src/histogram.rs:
crates/obs/src/json.rs:
crates/obs/src/prom.rs:
crates/obs/src/registry.rs:
crates/obs/src/sink.rs:
crates/obs/src/span.rs:
crates/obs/src/timer.rs:
crates/obs/src/trace.rs:
crates/obs/src/window.rs:
