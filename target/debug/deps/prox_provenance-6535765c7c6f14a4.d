/root/repo/target/debug/deps/prox_provenance-6535765c7c6f14a4.d: crates/provenance/src/lib.rs crates/provenance/src/aggexpr.rs crates/provenance/src/annot.rs crates/provenance/src/classes.rs crates/provenance/src/ddp.rs crates/provenance/src/display.rs crates/provenance/src/eval.rs crates/provenance/src/expr.rs crates/provenance/src/guard.rs crates/provenance/src/mapping.rs crates/provenance/src/monoid.rs crates/provenance/src/monomial.rs crates/provenance/src/parse.rs crates/provenance/src/persist.rs crates/provenance/src/phi.rs crates/provenance/src/polynomial.rs crates/provenance/src/provexpr.rs crates/provenance/src/semiring.rs crates/provenance/src/stats.rs crates/provenance/src/store.rs crates/provenance/src/tensor.rs crates/provenance/src/valuation.rs

/root/repo/target/debug/deps/libprox_provenance-6535765c7c6f14a4.rlib: crates/provenance/src/lib.rs crates/provenance/src/aggexpr.rs crates/provenance/src/annot.rs crates/provenance/src/classes.rs crates/provenance/src/ddp.rs crates/provenance/src/display.rs crates/provenance/src/eval.rs crates/provenance/src/expr.rs crates/provenance/src/guard.rs crates/provenance/src/mapping.rs crates/provenance/src/monoid.rs crates/provenance/src/monomial.rs crates/provenance/src/parse.rs crates/provenance/src/persist.rs crates/provenance/src/phi.rs crates/provenance/src/polynomial.rs crates/provenance/src/provexpr.rs crates/provenance/src/semiring.rs crates/provenance/src/stats.rs crates/provenance/src/store.rs crates/provenance/src/tensor.rs crates/provenance/src/valuation.rs

/root/repo/target/debug/deps/libprox_provenance-6535765c7c6f14a4.rmeta: crates/provenance/src/lib.rs crates/provenance/src/aggexpr.rs crates/provenance/src/annot.rs crates/provenance/src/classes.rs crates/provenance/src/ddp.rs crates/provenance/src/display.rs crates/provenance/src/eval.rs crates/provenance/src/expr.rs crates/provenance/src/guard.rs crates/provenance/src/mapping.rs crates/provenance/src/monoid.rs crates/provenance/src/monomial.rs crates/provenance/src/parse.rs crates/provenance/src/persist.rs crates/provenance/src/phi.rs crates/provenance/src/polynomial.rs crates/provenance/src/provexpr.rs crates/provenance/src/semiring.rs crates/provenance/src/stats.rs crates/provenance/src/store.rs crates/provenance/src/tensor.rs crates/provenance/src/valuation.rs

crates/provenance/src/lib.rs:
crates/provenance/src/aggexpr.rs:
crates/provenance/src/annot.rs:
crates/provenance/src/classes.rs:
crates/provenance/src/ddp.rs:
crates/provenance/src/display.rs:
crates/provenance/src/eval.rs:
crates/provenance/src/expr.rs:
crates/provenance/src/guard.rs:
crates/provenance/src/mapping.rs:
crates/provenance/src/monoid.rs:
crates/provenance/src/monomial.rs:
crates/provenance/src/parse.rs:
crates/provenance/src/persist.rs:
crates/provenance/src/phi.rs:
crates/provenance/src/polynomial.rs:
crates/provenance/src/provexpr.rs:
crates/provenance/src/semiring.rs:
crates/provenance/src/stats.rs:
crates/provenance/src/store.rs:
crates/provenance/src/tensor.rs:
crates/provenance/src/valuation.rs:
