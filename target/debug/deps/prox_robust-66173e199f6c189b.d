/root/repo/target/debug/deps/prox_robust-66173e199f6c189b.d: crates/robust/src/lib.rs crates/robust/src/budget.rs crates/robust/src/error.rs crates/robust/src/fault.rs

/root/repo/target/debug/deps/libprox_robust-66173e199f6c189b.rlib: crates/robust/src/lib.rs crates/robust/src/budget.rs crates/robust/src/error.rs crates/robust/src/fault.rs

/root/repo/target/debug/deps/libprox_robust-66173e199f6c189b.rmeta: crates/robust/src/lib.rs crates/robust/src/budget.rs crates/robust/src/error.rs crates/robust/src/fault.rs

crates/robust/src/lib.rs:
crates/robust/src/budget.rs:
crates/robust/src/error.rs:
crates/robust/src/fault.rs:
