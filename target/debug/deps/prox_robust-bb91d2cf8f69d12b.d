/root/repo/target/debug/deps/prox_robust-bb91d2cf8f69d12b.d: crates/robust/src/lib.rs crates/robust/src/budget.rs crates/robust/src/error.rs crates/robust/src/fault.rs

/root/repo/target/debug/deps/prox_robust-bb91d2cf8f69d12b: crates/robust/src/lib.rs crates/robust/src/budget.rs crates/robust/src/error.rs crates/robust/src/fault.rs

crates/robust/src/lib.rs:
crates/robust/src/budget.rs:
crates/robust/src/error.rs:
crates/robust/src/fault.rs:
