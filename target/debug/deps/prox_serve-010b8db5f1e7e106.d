/root/repo/target/debug/deps/prox_serve-010b8db5f1e7e106.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/service.rs crates/serve/src/signal.rs

/root/repo/target/debug/deps/prox_serve-010b8db5f1e7e106: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/service.rs crates/serve/src/signal.rs

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/http.rs:
crates/serve/src/queue.rs:
crates/serve/src/server.rs:
crates/serve/src/service.rs:
crates/serve/src/signal.rs:
