/root/repo/target/debug/deps/prox_serve-43b20ec6b6a55807.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/service.rs crates/serve/src/signal.rs

/root/repo/target/debug/deps/libprox_serve-43b20ec6b6a55807.rlib: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/service.rs crates/serve/src/signal.rs

/root/repo/target/debug/deps/libprox_serve-43b20ec6b6a55807.rmeta: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/service.rs crates/serve/src/signal.rs

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/http.rs:
crates/serve/src/queue.rs:
crates/serve/src/server.rs:
crates/serve/src/service.rs:
crates/serve/src/signal.rs:
