/root/repo/target/debug/deps/prox_system-6501ed6d78d3ebad.d: crates/system/src/lib.rs crates/system/src/evaluator.rs crates/system/src/insights.rs crates/system/src/render.rs crates/system/src/selection.rs crates/system/src/session.rs crates/system/src/summarization.rs

/root/repo/target/debug/deps/prox_system-6501ed6d78d3ebad: crates/system/src/lib.rs crates/system/src/evaluator.rs crates/system/src/insights.rs crates/system/src/render.rs crates/system/src/selection.rs crates/system/src/session.rs crates/system/src/summarization.rs

crates/system/src/lib.rs:
crates/system/src/evaluator.rs:
crates/system/src/insights.rs:
crates/system/src/render.rs:
crates/system/src/selection.rs:
crates/system/src/session.rs:
crates/system/src/summarization.rs:
