/root/repo/target/debug/deps/prox_system-8be5c0dc4e951e15.d: crates/system/src/lib.rs crates/system/src/evaluator.rs crates/system/src/insights.rs crates/system/src/render.rs crates/system/src/selection.rs crates/system/src/session.rs crates/system/src/summarization.rs

/root/repo/target/debug/deps/libprox_system-8be5c0dc4e951e15.rlib: crates/system/src/lib.rs crates/system/src/evaluator.rs crates/system/src/insights.rs crates/system/src/render.rs crates/system/src/selection.rs crates/system/src/session.rs crates/system/src/summarization.rs

/root/repo/target/debug/deps/libprox_system-8be5c0dc4e951e15.rmeta: crates/system/src/lib.rs crates/system/src/evaluator.rs crates/system/src/insights.rs crates/system/src/render.rs crates/system/src/selection.rs crates/system/src/session.rs crates/system/src/summarization.rs

crates/system/src/lib.rs:
crates/system/src/evaluator.rs:
crates/system/src/insights.rs:
crates/system/src/render.rs:
crates/system/src/selection.rs:
crates/system/src/session.rs:
crates/system/src/summarization.rs:
