/root/repo/target/debug/deps/prox_taxonomy-a4e98fd209717816.d: crates/taxonomy/src/lib.rs crates/taxonomy/src/consistency.rs crates/taxonomy/src/dag.rs crates/taxonomy/src/wordnet.rs crates/taxonomy/src/wu_palmer.rs

/root/repo/target/debug/deps/libprox_taxonomy-a4e98fd209717816.rlib: crates/taxonomy/src/lib.rs crates/taxonomy/src/consistency.rs crates/taxonomy/src/dag.rs crates/taxonomy/src/wordnet.rs crates/taxonomy/src/wu_palmer.rs

/root/repo/target/debug/deps/libprox_taxonomy-a4e98fd209717816.rmeta: crates/taxonomy/src/lib.rs crates/taxonomy/src/consistency.rs crates/taxonomy/src/dag.rs crates/taxonomy/src/wordnet.rs crates/taxonomy/src/wu_palmer.rs

crates/taxonomy/src/lib.rs:
crates/taxonomy/src/consistency.rs:
crates/taxonomy/src/dag.rs:
crates/taxonomy/src/wordnet.rs:
crates/taxonomy/src/wu_palmer.rs:
