/root/repo/target/debug/deps/prox_taxonomy-dbfb43b8ba16d816.d: crates/taxonomy/src/lib.rs crates/taxonomy/src/consistency.rs crates/taxonomy/src/dag.rs crates/taxonomy/src/wordnet.rs crates/taxonomy/src/wu_palmer.rs

/root/repo/target/debug/deps/prox_taxonomy-dbfb43b8ba16d816: crates/taxonomy/src/lib.rs crates/taxonomy/src/consistency.rs crates/taxonomy/src/dag.rs crates/taxonomy/src/wordnet.rs crates/taxonomy/src/wu_palmer.rs

crates/taxonomy/src/lib.rs:
crates/taxonomy/src/consistency.rs:
crates/taxonomy/src/dag.rs:
crates/taxonomy/src/wordnet.rs:
crates/taxonomy/src/wu_palmer.rs:
