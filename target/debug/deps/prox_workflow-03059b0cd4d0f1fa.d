/root/repo/target/debug/deps/prox_workflow-03059b0cd4d0f1fa.d: crates/workflow/src/lib.rs crates/workflow/src/module.rs crates/workflow/src/movies.rs crates/workflow/src/query.rs crates/workflow/src/relation.rs

/root/repo/target/debug/deps/prox_workflow-03059b0cd4d0f1fa: crates/workflow/src/lib.rs crates/workflow/src/module.rs crates/workflow/src/movies.rs crates/workflow/src/query.rs crates/workflow/src/relation.rs

crates/workflow/src/lib.rs:
crates/workflow/src/module.rs:
crates/workflow/src/movies.rs:
crates/workflow/src/query.rs:
crates/workflow/src/relation.rs:
