/root/repo/target/debug/deps/prox_workflow-abedb657cce97c92.d: crates/workflow/src/lib.rs crates/workflow/src/module.rs crates/workflow/src/movies.rs crates/workflow/src/query.rs crates/workflow/src/relation.rs

/root/repo/target/debug/deps/libprox_workflow-abedb657cce97c92.rlib: crates/workflow/src/lib.rs crates/workflow/src/module.rs crates/workflow/src/movies.rs crates/workflow/src/query.rs crates/workflow/src/relation.rs

/root/repo/target/debug/deps/libprox_workflow-abedb657cce97c92.rmeta: crates/workflow/src/lib.rs crates/workflow/src/module.rs crates/workflow/src/movies.rs crates/workflow/src/query.rs crates/workflow/src/relation.rs

crates/workflow/src/lib.rs:
crates/workflow/src/module.rs:
crates/workflow/src/movies.rs:
crates/workflow/src/query.rs:
crates/workflow/src/relation.rs:
