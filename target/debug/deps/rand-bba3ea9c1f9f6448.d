/root/repo/target/debug/deps/rand-bba3ea9c1f9f6448.d: /root/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-bba3ea9c1f9f6448.rlib: /root/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-bba3ea9c1f9f6448.rmeta: /root/stubs/rand/src/lib.rs

/root/stubs/rand/src/lib.rs:
