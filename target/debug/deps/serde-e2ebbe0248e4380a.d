/root/repo/target/debug/deps/serde-e2ebbe0248e4380a.d: /root/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e2ebbe0248e4380a.rlib: /root/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e2ebbe0248e4380a.rmeta: /root/stubs/serde/src/lib.rs

/root/stubs/serde/src/lib.rs:
