/root/repo/target/debug/deps/serde_derive-bea9dbdce5e24f14.d: /root/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-bea9dbdce5e24f14.so: /root/stubs/serde_derive/src/lib.rs

/root/stubs/serde_derive/src/lib.rs:
