/root/repo/target/debug/deps/trace_e2e-10d75d983bff019f.d: crates/serve/tests/trace_e2e.rs

/root/repo/target/debug/deps/trace_e2e-10d75d983bff019f: crates/serve/tests/trace_e2e.rs

crates/serve/tests/trace_e2e.rs:
