/root/repo/target/debug/deps/workflow_to_summary-ae0c07f28bce026f.d: tests/workflow_to_summary.rs

/root/repo/target/debug/deps/workflow_to_summary-ae0c07f28bce026f: tests/workflow_to_summary.rs

tests/workflow_to_summary.rs:
