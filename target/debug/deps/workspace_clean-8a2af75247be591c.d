/root/repo/target/debug/deps/workspace_clean-8a2af75247be591c.d: crates/lint/tests/workspace_clean.rs

/root/repo/target/debug/deps/workspace_clean-8a2af75247be591c: crates/lint/tests/workspace_clean.rs

crates/lint/tests/workspace_clean.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
