/root/repo/target/debug/examples/ddp_whatif-6a1e6536fd22aabf.d: examples/ddp_whatif.rs

/root/repo/target/debug/examples/ddp_whatif-6a1e6536fd22aabf: examples/ddp_whatif.rs

examples/ddp_whatif.rs:
