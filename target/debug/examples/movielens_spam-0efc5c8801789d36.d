/root/repo/target/debug/examples/movielens_spam-0efc5c8801789d36.d: examples/movielens_spam.rs

/root/repo/target/debug/examples/movielens_spam-0efc5c8801789d36: examples/movielens_spam.rs

examples/movielens_spam.rs:
