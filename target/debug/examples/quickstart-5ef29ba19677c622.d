/root/repo/target/debug/examples/quickstart-5ef29ba19677c622.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5ef29ba19677c622: examples/quickstart.rs

examples/quickstart.rs:
