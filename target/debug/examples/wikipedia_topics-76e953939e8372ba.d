/root/repo/target/debug/examples/wikipedia_topics-76e953939e8372ba.d: examples/wikipedia_topics.rs

/root/repo/target/debug/examples/wikipedia_topics-76e953939e8372ba: examples/wikipedia_topics.rs

examples/wikipedia_topics.rs:
