/root/repo/target/debug/examples/workflow_provenance-8b86b98a2ee479e3.d: examples/workflow_provenance.rs

/root/repo/target/debug/examples/workflow_provenance-8b86b98a2ee479e3: examples/workflow_provenance.rs

examples/workflow_provenance.rs:
