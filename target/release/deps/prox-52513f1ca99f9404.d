/root/repo/target/release/deps/prox-52513f1ca99f9404.d: src/bin/prox.rs

/root/repo/target/release/deps/prox-52513f1ca99f9404: src/bin/prox.rs

src/bin/prox.rs:
