/root/repo/target/release/deps/prox-abd9aedcf3d579f9.d: src/lib.rs

/root/repo/target/release/deps/libprox-abd9aedcf3d579f9.rlib: src/lib.rs

/root/repo/target/release/deps/libprox-abd9aedcf3d579f9.rmeta: src/lib.rs

src/lib.rs:
