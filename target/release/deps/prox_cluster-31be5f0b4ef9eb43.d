/root/repo/target/release/deps/prox_cluster-31be5f0b4ef9eb43.d: crates/cluster/src/lib.rs crates/cluster/src/dendrogram.rs crates/cluster/src/features.rs crates/cluster/src/hac.rs crates/cluster/src/linkage.rs crates/cluster/src/matrix.rs crates/cluster/src/pearson.rs crates/cluster/src/random.rs crates/cluster/src/replay.rs

/root/repo/target/release/deps/libprox_cluster-31be5f0b4ef9eb43.rlib: crates/cluster/src/lib.rs crates/cluster/src/dendrogram.rs crates/cluster/src/features.rs crates/cluster/src/hac.rs crates/cluster/src/linkage.rs crates/cluster/src/matrix.rs crates/cluster/src/pearson.rs crates/cluster/src/random.rs crates/cluster/src/replay.rs

/root/repo/target/release/deps/libprox_cluster-31be5f0b4ef9eb43.rmeta: crates/cluster/src/lib.rs crates/cluster/src/dendrogram.rs crates/cluster/src/features.rs crates/cluster/src/hac.rs crates/cluster/src/linkage.rs crates/cluster/src/matrix.rs crates/cluster/src/pearson.rs crates/cluster/src/random.rs crates/cluster/src/replay.rs

crates/cluster/src/lib.rs:
crates/cluster/src/dendrogram.rs:
crates/cluster/src/features.rs:
crates/cluster/src/hac.rs:
crates/cluster/src/linkage.rs:
crates/cluster/src/matrix.rs:
crates/cluster/src/pearson.rs:
crates/cluster/src/random.rs:
crates/cluster/src/replay.rs:
