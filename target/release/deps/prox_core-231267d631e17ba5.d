/root/repo/target/release/deps/prox_core-231267d631e17ba5.d: crates/core/src/lib.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/constraints.rs crates/core/src/distance.rs crates/core/src/equivalence.rs crates/core/src/hardness.rs crates/core/src/history.rs crates/core/src/optimal.rs crates/core/src/sampler.rs crates/core/src/score.rs crates/core/src/summarize.rs crates/core/src/val_func.rs

/root/repo/target/release/deps/libprox_core-231267d631e17ba5.rlib: crates/core/src/lib.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/constraints.rs crates/core/src/distance.rs crates/core/src/equivalence.rs crates/core/src/hardness.rs crates/core/src/history.rs crates/core/src/optimal.rs crates/core/src/sampler.rs crates/core/src/score.rs crates/core/src/summarize.rs crates/core/src/val_func.rs

/root/repo/target/release/deps/libprox_core-231267d631e17ba5.rmeta: crates/core/src/lib.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/constraints.rs crates/core/src/distance.rs crates/core/src/equivalence.rs crates/core/src/hardness.rs crates/core/src/history.rs crates/core/src/optimal.rs crates/core/src/sampler.rs crates/core/src/score.rs crates/core/src/summarize.rs crates/core/src/val_func.rs

crates/core/src/lib.rs:
crates/core/src/candidates.rs:
crates/core/src/config.rs:
crates/core/src/constraints.rs:
crates/core/src/distance.rs:
crates/core/src/equivalence.rs:
crates/core/src/hardness.rs:
crates/core/src/history.rs:
crates/core/src/optimal.rs:
crates/core/src/sampler.rs:
crates/core/src/score.rs:
crates/core/src/summarize.rs:
crates/core/src/val_func.rs:
