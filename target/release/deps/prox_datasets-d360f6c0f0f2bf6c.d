/root/repo/target/release/deps/prox_datasets-d360f6c0f0f2bf6c.d: crates/datasets/src/lib.rs crates/datasets/src/ddp.rs crates/datasets/src/movielens.rs crates/datasets/src/names.rs crates/datasets/src/wikipedia.rs

/root/repo/target/release/deps/libprox_datasets-d360f6c0f0f2bf6c.rlib: crates/datasets/src/lib.rs crates/datasets/src/ddp.rs crates/datasets/src/movielens.rs crates/datasets/src/names.rs crates/datasets/src/wikipedia.rs

/root/repo/target/release/deps/libprox_datasets-d360f6c0f0f2bf6c.rmeta: crates/datasets/src/lib.rs crates/datasets/src/ddp.rs crates/datasets/src/movielens.rs crates/datasets/src/names.rs crates/datasets/src/wikipedia.rs

crates/datasets/src/lib.rs:
crates/datasets/src/ddp.rs:
crates/datasets/src/movielens.rs:
crates/datasets/src/names.rs:
crates/datasets/src/wikipedia.rs:
