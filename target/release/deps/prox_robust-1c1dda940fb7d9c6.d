/root/repo/target/release/deps/prox_robust-1c1dda940fb7d9c6.d: crates/robust/src/lib.rs crates/robust/src/budget.rs crates/robust/src/error.rs crates/robust/src/fault.rs

/root/repo/target/release/deps/libprox_robust-1c1dda940fb7d9c6.rlib: crates/robust/src/lib.rs crates/robust/src/budget.rs crates/robust/src/error.rs crates/robust/src/fault.rs

/root/repo/target/release/deps/libprox_robust-1c1dda940fb7d9c6.rmeta: crates/robust/src/lib.rs crates/robust/src/budget.rs crates/robust/src/error.rs crates/robust/src/fault.rs

crates/robust/src/lib.rs:
crates/robust/src/budget.rs:
crates/robust/src/error.rs:
crates/robust/src/fault.rs:
