/root/repo/target/release/deps/prox_serve-1245baf5addd882b.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/service.rs crates/serve/src/signal.rs

/root/repo/target/release/deps/libprox_serve-1245baf5addd882b.rlib: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/service.rs crates/serve/src/signal.rs

/root/repo/target/release/deps/libprox_serve-1245baf5addd882b.rmeta: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/http.rs crates/serve/src/queue.rs crates/serve/src/server.rs crates/serve/src/service.rs crates/serve/src/signal.rs

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/http.rs:
crates/serve/src/queue.rs:
crates/serve/src/server.rs:
crates/serve/src/service.rs:
crates/serve/src/signal.rs:
