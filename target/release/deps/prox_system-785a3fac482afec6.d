/root/repo/target/release/deps/prox_system-785a3fac482afec6.d: crates/system/src/lib.rs crates/system/src/evaluator.rs crates/system/src/insights.rs crates/system/src/render.rs crates/system/src/selection.rs crates/system/src/session.rs crates/system/src/summarization.rs

/root/repo/target/release/deps/libprox_system-785a3fac482afec6.rlib: crates/system/src/lib.rs crates/system/src/evaluator.rs crates/system/src/insights.rs crates/system/src/render.rs crates/system/src/selection.rs crates/system/src/session.rs crates/system/src/summarization.rs

/root/repo/target/release/deps/libprox_system-785a3fac482afec6.rmeta: crates/system/src/lib.rs crates/system/src/evaluator.rs crates/system/src/insights.rs crates/system/src/render.rs crates/system/src/selection.rs crates/system/src/session.rs crates/system/src/summarization.rs

crates/system/src/lib.rs:
crates/system/src/evaluator.rs:
crates/system/src/insights.rs:
crates/system/src/render.rs:
crates/system/src/selection.rs:
crates/system/src/session.rs:
crates/system/src/summarization.rs:
