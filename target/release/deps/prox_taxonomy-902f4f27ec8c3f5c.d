/root/repo/target/release/deps/prox_taxonomy-902f4f27ec8c3f5c.d: crates/taxonomy/src/lib.rs crates/taxonomy/src/consistency.rs crates/taxonomy/src/dag.rs crates/taxonomy/src/wordnet.rs crates/taxonomy/src/wu_palmer.rs

/root/repo/target/release/deps/libprox_taxonomy-902f4f27ec8c3f5c.rlib: crates/taxonomy/src/lib.rs crates/taxonomy/src/consistency.rs crates/taxonomy/src/dag.rs crates/taxonomy/src/wordnet.rs crates/taxonomy/src/wu_palmer.rs

/root/repo/target/release/deps/libprox_taxonomy-902f4f27ec8c3f5c.rmeta: crates/taxonomy/src/lib.rs crates/taxonomy/src/consistency.rs crates/taxonomy/src/dag.rs crates/taxonomy/src/wordnet.rs crates/taxonomy/src/wu_palmer.rs

crates/taxonomy/src/lib.rs:
crates/taxonomy/src/consistency.rs:
crates/taxonomy/src/dag.rs:
crates/taxonomy/src/wordnet.rs:
crates/taxonomy/src/wu_palmer.rs:
