/root/repo/target/release/deps/prox_workflow-7b74fdfd25eb5eea.d: crates/workflow/src/lib.rs crates/workflow/src/module.rs crates/workflow/src/movies.rs crates/workflow/src/query.rs crates/workflow/src/relation.rs

/root/repo/target/release/deps/libprox_workflow-7b74fdfd25eb5eea.rlib: crates/workflow/src/lib.rs crates/workflow/src/module.rs crates/workflow/src/movies.rs crates/workflow/src/query.rs crates/workflow/src/relation.rs

/root/repo/target/release/deps/libprox_workflow-7b74fdfd25eb5eea.rmeta: crates/workflow/src/lib.rs crates/workflow/src/module.rs crates/workflow/src/movies.rs crates/workflow/src/query.rs crates/workflow/src/relation.rs

crates/workflow/src/lib.rs:
crates/workflow/src/module.rs:
crates/workflow/src/movies.rs:
crates/workflow/src/query.rs:
crates/workflow/src/relation.rs:
