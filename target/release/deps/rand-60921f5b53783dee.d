/root/repo/target/release/deps/rand-60921f5b53783dee.d: /root/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-60921f5b53783dee.rlib: /root/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-60921f5b53783dee.rmeta: /root/stubs/rand/src/lib.rs

/root/stubs/rand/src/lib.rs:
