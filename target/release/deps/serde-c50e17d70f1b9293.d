/root/repo/target/release/deps/serde-c50e17d70f1b9293.d: /root/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c50e17d70f1b9293.rlib: /root/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c50e17d70f1b9293.rmeta: /root/stubs/serde/src/lib.rs

/root/stubs/serde/src/lib.rs:
