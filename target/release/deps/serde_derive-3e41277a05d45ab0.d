/root/repo/target/release/deps/serde_derive-3e41277a05d45ab0.d: /root/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-3e41277a05d45ab0.so: /root/stubs/serde_derive/src/lib.rs

/root/stubs/serde_derive/src/lib.rs:
