//! Adversarial-input tests: degenerate workloads must produce a valid
//! summary or a typed [`prox::robust::ProxError`] — never a panic, never a
//! hang. These exercise the robustness contract end to end through the
//! umbrella crate's public API.

use prox::core::{
    CancelFlag, ConstraintConfig, ErrorKind, ExecutionBudget, MergeRule, StopReason,
    SummarizeConfig, Summarizer,
};
use prox::datasets::{MovieLens, MovieLensConfig};
use prox::provenance::{AggKind, AggValue, AnnStore, Polynomial, ProvExpr, Tensor, ValuationClass};
use prox::taxonomy::{check_taxonomy, Taxonomy};

#[test]
fn empty_polynomial_summarizes_without_panicking() {
    let mut store = AnnStore::new();
    let users = store.domain("users");
    let constraints =
        ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
    let p0 = ProvExpr::new(AggKind::Max);
    let mut summarizer = Summarizer::new(&mut store, constraints, SummarizeConfig::default());
    let res = summarizer
        .summarize(&p0, &[])
        .expect("an empty expression is valid input, not an error");
    assert_eq!(res.final_size(), 0);
    assert!(res.history.is_empty());
}

#[test]
fn single_annotation_workload_is_a_fixed_point() {
    let mut store = AnnStore::new();
    let u = store.add_base_with("U1", "users", &[("gender", "F")]);
    let m = store.add_base_with("M1", "movies", &[]);
    let users = store.domain("users");
    let mut p0 = ProvExpr::new(AggKind::Max);
    p0.push(m, Tensor::new(Polynomial::var(u), AggValue::single(4.0)));

    let valuations = ValuationClass::CancelSingleAnnotation.generate(&store, &[u], &[users]);
    let constraints =
        ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
    let mut summarizer = Summarizer::new(&mut store, constraints, SummarizeConfig::default());
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("a single annotation has nothing to merge");
    assert_eq!(res.final_size(), p0.size());
    assert!(res.history.is_empty(), "no merge is possible");
}

#[test]
fn all_identical_annotations_collapse_without_panicking() {
    // Five users with identical attributes and identical ratings: every
    // pair is mergeable at distance zero.
    let mut store = AnnStore::new();
    let m = store.add_base_with("M1", "movies", &[]);
    let mut p0 = ProvExpr::new(AggKind::Max);
    let mut anns = Vec::new();
    for i in 0..5 {
        let u = store.add_base_with(&format!("U{i}"), "users", &[("gender", "F")]);
        p0.push(m, Tensor::new(Polynomial::var(u), AggValue::single(3.0)));
        anns.push(u);
    }
    let users = store.domain("users");
    let valuations = ValuationClass::CancelSingleAnnotation.generate(&store, &anns, &[users]);
    let constraints =
        ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
    let config = SummarizeConfig {
        max_steps: 20,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut store, constraints, config);
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("identical annotations are valid input");
    assert!(res.final_size() <= p0.size());
    assert!(res.history.check_monotone().is_ok());
    assert!(
        (0.0..=1.0).contains(&res.final_distance),
        "distance stays normalized: {}",
        res.final_distance
    );
}

#[test]
fn cyclic_taxonomy_is_a_typed_input_error() {
    let mut t = Taxonomy::new();
    t.subclass("a", "b");
    t.subclass("b", "c");
    assert!(check_taxonomy(&t).is_ok(), "a chain is consistent");
    t.subclass("c", "a"); // closes the cycle a → b → c → a
    let err = check_taxonomy(&t).expect_err("cycle must be reported");
    assert_eq!(err.kind(), ErrorKind::Input);
    assert_eq!(err.kind().exit_code(), 2);
}

#[test]
fn summarizing_under_a_cyclic_taxonomy_terminates() {
    // A degenerate taxonomy must not hang or panic the summarizer — the
    // ancestor walks are visited-set guarded, so queries terminate and the
    // run either merges or reports no candidates.
    let mut t = Taxonomy::new();
    t.subclass("a", "b");
    t.subclass("b", "a");
    assert!(check_taxonomy(&t).is_err());

    let mut store = AnnStore::new();
    let pages = store.domain("pages");
    let p1 = store.add_base("P1", pages, vec![]);
    let p2 = store.add_base("P2", pages, vec![]);
    store.set_concept(p1, t.by_name("a").expect("interned").0);
    store.set_concept(p2, t.by_name("b").expect("interned").0);

    let mut p0 = ProvExpr::new(AggKind::Sum);
    p0.push(p1, Tensor::new(Polynomial::var(p1), AggValue::single(1.0)));
    p0.push(p2, Tensor::new(Polynomial::var(p2), AggValue::single(2.0)));
    let valuations = ValuationClass::CancelSingleAnnotation.generate(&store, &[p1, p2], &[pages]);
    let constraints = ConstraintConfig::new().allow(pages, MergeRule::TaxonomyAncestor);
    let config = SummarizeConfig {
        max_steps: 4,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut store, constraints, config).with_taxonomy(&t);
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("cyclic taxonomy degrades, it does not panic");
    assert!(res.final_size() <= p0.size());
}

#[test]
fn mid_run_deadline_returns_best_so_far() {
    // A workload far too large to finish in 10ms: the deadline trips
    // mid-run and the anytime contract returns the best summary reached.
    let mut data = MovieLens::generate(MovieLensConfig {
        users: 120,
        movies: 10,
        ratings_per_user: 3,
        seed: 77,
    });
    let p0 = data.provenance(AggKind::Max);
    let valuations = data.valuations(ValuationClass::CancelSingleAnnotation);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        max_steps: usize::MAX,
        budget: ExecutionBudget::unlimited().with_deadline_ms(10),
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("mid-run deadline exhaustion is not an error");
    assert_eq!(res.stop_reason, StopReason::DeadlineExceeded);
    assert!(res.final_size() <= p0.size());
    assert!(res.history.check_monotone().is_ok());
}

#[test]
fn cancellation_from_another_thread_stops_the_run() {
    let flag = CancelFlag::new();
    let watcher = flag.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(10));
        watcher.cancel();
    });

    let mut data = MovieLens::generate(MovieLensConfig {
        users: 120,
        movies: 10,
        ratings_per_user: 3,
        seed: 78,
    });
    let p0 = data.provenance(AggKind::Max);
    let valuations = data.valuations(ValuationClass::CancelSingleAnnotation);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        max_steps: usize::MAX,
        budget: ExecutionBudget::unlimited().with_cancel(flag),
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    // The flag is normally raised mid-run (best-so-far result); under
    // pathological scheduling it can already be up at the first check
    // (typed budget error). Both are fine — panicking is not.
    match summarizer.summarize(&p0, &valuations) {
        Ok(res) => {
            assert_eq!(res.stop_reason, StopReason::Cancelled);
            assert!(res.final_size() <= p0.size());
        }
        Err(e) => assert_eq!(e.kind(), ErrorKind::Budget),
    }
    canceller.join().expect("canceller thread exits");
}

#[test]
fn pre_raised_cancel_is_a_budget_error_through_the_service() {
    use prox::system::{select, summarize, Selection, SummarizationRequest};

    let mut data = MovieLens::generate(MovieLensConfig::default());
    let sel = select(&mut data, &Selection::All, AggKind::Max);
    let flag = CancelFlag::new();
    flag.cancel();
    let request = SummarizationRequest {
        budget: ExecutionBudget::unlimited().with_cancel(flag),
        ..Default::default()
    };
    let err = summarize(&mut data, &sel, request).expect_err("cancelled before any work");
    assert_eq!(err.kind(), ErrorKind::Budget);
    assert_eq!(err.kind().exit_code(), 3);
}
