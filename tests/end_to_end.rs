//! End-to-end integration tests: full pipelines over the three datasets,
//! baseline comparability, and the PROX system flow.

use prox::cluster::{random_summarize, replay, Linkage};
use prox::core::{StopReason, SummarizeConfig, Summarizer, ValFuncKind};
use prox::datasets::{Ddp, DdpConfig, MovieLens, MovieLensConfig, Wikipedia, WikipediaConfig};
use prox::provenance::{AggKind, ValuationClass};
use prox::system::{
    evaluator::{evaluate_both, Assignment},
    select, summarize as service_summarize, Selection, Session, SummarizationRequest,
};

#[test]
fn movielens_full_pipeline() {
    let mut data = MovieLens::generate(MovieLensConfig {
        users: 20,
        movies: 5,
        ratings_per_user: 2,
        seed: 101,
    });
    let p0 = data.provenance(AggKind::Max);
    let valuations = data.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        w_dist: 0.7,
        w_size: 0.3,
        max_steps: 10,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("valid config");

    assert!(res.final_size() < p0.size());
    assert!(res.history.check_monotone().is_ok(), "Prop 4.2.2 holds");
    assert!((0.0..=1.0).contains(&res.final_distance));
    // Every step's summary annotation groups ≥ 2 base members sharing an
    // attribute (the semantic constraint).
    for step in &res.history.steps {
        let ann = data.store.get(step.target);
        assert!(ann.base_members().len() >= 2);
        assert!(
            !ann.attrs.is_empty(),
            "groups keep the shared attribute that names them"
        );
    }
}

#[test]
fn wikipedia_full_pipeline_with_taxonomy() {
    let mut data = Wikipedia::generate(WikipediaConfig {
        users: 12,
        pages: 8,
        edits_per_user: 2,
        major_prob: 0.5,
        seed: 102,
    });
    let p0 = data.provenance();
    let valuations = data.valuations(ValuationClass::CancelSingleAnnotation);
    let constraints = data.constraints();
    let taxonomy = data.taxonomy.clone();
    let config = SummarizeConfig {
        max_steps: 8,
        ..Default::default()
    };
    let mut summarizer =
        Summarizer::new(&mut data.store, constraints, config).with_taxonomy(&taxonomy);
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("valid config");
    assert!(res.final_size() <= p0.size());
    assert!(res.history.check_monotone().is_ok());
    // Page groups, when formed, carry their LCS concept.
    for step in &res.history.steps {
        let ann = data.store.get(step.target);
        if data.store.domain_name(ann.domain) == "pages" {
            assert!(ann.concept.is_some(), "page groups get the LCS concept");
        }
    }
}

#[test]
fn ddp_full_pipeline() {
    let mut data = Ddp::generate(DdpConfig {
        seed: 103,
        ..Default::default()
    });
    let p0 = data.provenance.clone();
    let valuations = data.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        max_steps: 10,
        phi: data.phi(),
        val_func: ValFuncKind::DdpDiff,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("valid config");
    assert!(res.final_size() <= p0.size());
    assert!((0.0..=1.0).contains(&res.final_distance));
}

#[test]
fn prov_approx_no_worse_than_random_on_distance() {
    let mut data = MovieLens::generate(MovieLensConfig {
        users: 20,
        movies: 5,
        ratings_per_user: 2,
        seed: 104,
    });
    let p0 = data.provenance(AggKind::Max);
    let valuations = data.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        w_dist: 1.0,
        w_size: 0.0,
        max_steps: 8,
        ..Default::default()
    };
    let mut store_pa = data.store.clone();
    let mut summarizer = Summarizer::new(&mut store_pa, constraints.clone(), config.clone());
    let pa = summarizer
        .summarize(&p0, &valuations)
        .expect("valid config");

    let mut random_avg = 0.0;
    const SEEDS: u64 = 5;
    for seed in 0..SEEDS {
        let mut store_r = data.store.clone();
        let r = random_summarize(
            &p0,
            &mut store_r,
            &constraints,
            None,
            &valuations,
            &config,
            seed,
        );
        random_avg += r.final_distance;
    }
    random_avg /= SEEDS as f64;
    assert!(
        pa.final_distance <= random_avg + 1e-9,
        "{} vs {random_avg}",
        pa.final_distance
    );
}

#[test]
fn clustering_baseline_is_comparable() {
    use prox::cluster::{cluster, matrix_of, merges_to_ann, user_dissimilarity, user_features};
    let mut data = MovieLens::generate(MovieLensConfig {
        users: 16,
        movies: 4,
        ratings_per_user: 2,
        seed: 105,
    });
    let p0 = data.provenance(AggKind::Max);
    let valuations = data.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = data.constraints();

    let interactions: Vec<_> = data
        .ratings
        .iter()
        .map(|r| (r.user, r.movie, r.stars))
        .collect();
    let feats = user_features(&data.users, &interactions, &data.store);
    let matrix = matrix_of(&feats, user_dissimilarity);
    let users = data.users.clone();
    let store_ref = data.store.clone();
    let cfg = constraints.clone();
    let merges = cluster(&matrix, Linkage::Single, |l, r| {
        let members: Vec<_> = l.iter().chain(r).map(|&ix| users[ix]).collect();
        cfg.group_ok(&members, &store_ref, None)
    });
    let queue = merges_to_ann(&merges, &users);
    let config = SummarizeConfig {
        max_steps: 6,
        ..Default::default()
    };
    let res = replay(&p0, &queue, &mut data.store, &valuations, &config);
    assert!(res.final_size() <= p0.size());
    assert!(res.history.len() <= 6);
    assert!(res.history.check_monotone().is_ok());
}

#[test]
fn system_flow_selection_to_provisioning() {
    let mut data = MovieLens::generate(MovieLensConfig {
        users: 20,
        movies: 6,
        ratings_per_user: 2,
        seed: 106,
    });
    let sel = select(&mut data, &Selection::All, AggKind::Max);
    let out =
        service_summarize(&mut data, &sel, SummarizationRequest::default()).expect("valid request");
    let session = Session::new(out);

    let assignment = Assignment::FalseAttributes(vec![("gender".into(), "M".into())]);
    let (orig, summ) = evaluate_both(
        &session.summarized().original,
        session.expression(),
        &assignment,
        &data.store,
    );
    assert_eq!(orig.rows.len(), summ.rows.len());
    // Approximate provisioning may differ from exact, but is bounded by
    // the rating scale on every coordinate.
    for (o, s) in orig.rows.iter().zip(&summ.rows) {
        assert!((o.aggregated - s.aggregated).abs() <= 5.0);
    }
}

#[test]
fn target_flavors_match_their_stop_reasons() {
    let mut data = MovieLens::generate(MovieLensConfig {
        users: 15,
        movies: 4,
        ratings_per_user: 2,
        seed: 107,
    });
    let p0 = data.provenance(AggKind::Max);
    let valuations = data.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = data.constraints();

    // Flavor 2: TARGET-SIZE.
    let target = p0.size() * 4 / 5;
    let mut store2 = data.store.clone();
    let mut s2 = Summarizer::new(
        &mut store2,
        constraints.clone(),
        SummarizeConfig::target_size(target),
    );
    let r2 = s2.summarize(&p0, &valuations).expect("valid config");
    assert!(
        r2.final_size() <= target || r2.stop_reason == StopReason::NoCandidates,
        "size {} target {target} reason {:?}",
        r2.final_size(),
        r2.stop_reason
    );

    // Flavor 3: TARGET-DIST.
    let mut store3 = data.store.clone();
    let mut s3 = Summarizer::new(&mut store3, constraints, SummarizeConfig::target_dist(0.05));
    let r3 = s3.summarize(&p0, &valuations).expect("valid config");
    assert!(r3.final_distance < 0.05);
}
