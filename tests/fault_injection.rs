//! Deterministic fault-injection tests: with `PROX_FAULT` clauses armed,
//! every layer must degrade into a valid result or a typed
//! [`prox::robust::ProxError`] — never a panic.
//!
//! Every test holds a [`FaultGuard`], which serializes fault tests on a
//! global lock and restores the prior plan on drop, so the process-global
//! harness state never leaks between tests. CI reruns this suite under
//! several `PROX_FAULT` values (see `env_spec_end_to_end_never_panics`).

use prox::core::{ErrorKind, StopReason, SummarizeConfig, Summarizer, ValFuncKind};
use prox::datasets::{Ddp, DdpConfig, MovieLens, MovieLensConfig, Wikipedia, WikipediaConfig};
use prox::provenance::{load_workload, save_workload, AggKind, SavedWorkload, ValuationClass};
use prox::robust::fault::{parse_spec, FaultGuard};
use prox::taxonomy::{check_taxonomy, wordnet_fragment};

#[test]
fn fault_spec_grammar_accepts_and_rejects() {
    // Accepted clauses: `site[@param]:seed`, comma separated.
    assert!(parse_spec("corrupt:1").is_ok(), "param defaults to 1.0");
    assert!(parse_spec("corrupt@0.05:42").is_ok());
    assert!(parse_spec("truncate@0.5:7,budget@5:3,taxflip@2:4").is_ok());
    assert!(
        parse_spec("budget@0:1").is_ok(),
        "trip-at-first-check is legal"
    );

    // Rejected clauses are Config errors (an input problem, exit code 2).
    assert!(parse_spec("corrupt@0.05").is_err(), "missing seed");
    assert!(parse_spec("corrupt@0.05:x").is_err(), "seed must be a u64");
    assert!(parse_spec("corrupt@2.0:1").is_err(), "probability beyond 1");
    assert!(
        parse_spec("budget@1.5:1").is_err(),
        "budget param must be integral"
    );
    assert!(parse_spec("bogus:1").is_err(), "unknown site");
    let err = parse_spec("bogus:1").expect_err("unknown site");
    assert_eq!(err.kind(), ErrorKind::Input);
    assert_eq!(err.kind().exit_code(), 2);
}

#[test]
fn corrupted_workload_bytes_are_a_typed_error_or_a_valid_load() {
    let path = std::env::temp_dir().join(format!("prox_fault_corrupt_{}.json", std::process::id()));
    let data = MovieLens::generate(MovieLensConfig {
        users: 6,
        movies: 3,
        ratings_per_user: 2,
        seed: 5,
    });
    let p0 = data.provenance(AggKind::Max);
    {
        // Write pristine bytes; corruption applies on the read path.
        let _clean = FaultGuard::disabled();
        save_workload(&path, &SavedWorkload::aggregated(data.store.clone(), p0))
            .expect("temp dir is writable");
    }
    for seed in [1u64, 2, 3, 42, 99] {
        let _g = FaultGuard::install(&format!("corrupt@0.02:{seed}")).expect("valid spec");
        match load_workload(&path) {
            // A lucky flip can leave the JSON parsable; the load is then
            // fully validated, so using it is safe.
            Ok(w) => assert!(w.provenance.is_some(), "loads are validated"),
            Err(e) => assert_eq!(
                e.kind(),
                ErrorKind::Input,
                "corruption is an input error: {e}"
            ),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_movielens_still_summarizes() {
    let baseline = {
        let _clean = FaultGuard::disabled();
        MovieLens::generate(MovieLensConfig::default())
            .ratings
            .len()
    };
    let _g = FaultGuard::install("truncate@0.5:7").expect("valid spec");
    let mut data = MovieLens::generate(MovieLensConfig::default());
    assert_eq!(data.ratings.len(), baseline / 2, "half the ratings survive");

    let p0 = data.provenance(AggKind::Max);
    let valuations = data.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        max_steps: 3,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("a truncated dataset is still valid input");
    assert!(res.final_size() <= p0.size());
    assert!(res.history.check_monotone().is_ok());
}

#[test]
fn truncation_to_zero_yields_an_empty_expression() {
    let _g = FaultGuard::install("truncate@0:11").expect("valid spec");
    let mut data = MovieLens::generate(MovieLensConfig::default());
    assert!(data.ratings.is_empty());
    let p0 = data.provenance(AggKind::Max);
    assert_eq!(p0.size(), 0);

    let valuations = data.valuations(ValuationClass::CancelSingleAnnotation);
    let constraints = data.constraints();
    let mut summarizer = Summarizer::new(&mut data.store, constraints, SummarizeConfig::default());
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("an empty expression is valid input");
    assert_eq!(res.final_size(), 0);
}

#[test]
fn truncated_wikipedia_and_ddp_pipelines_run() {
    let _g = FaultGuard::install("truncate@0.5:13").expect("valid spec");

    let mut wiki = Wikipedia::generate(WikipediaConfig::default());
    let p0 = wiki.provenance();
    let valuations = wiki.valuations(ValuationClass::CancelSingleAnnotation);
    let constraints = wiki.constraints();
    let taxonomy = wiki.taxonomy.clone();
    let config = SummarizeConfig {
        max_steps: 2,
        ..Default::default()
    };
    let mut summarizer =
        Summarizer::new(&mut wiki.store, constraints, config).with_taxonomy(&taxonomy);
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("truncated wikipedia is valid input");
    assert!(res.final_size() <= p0.size());

    let mut ddp = Ddp::generate(DdpConfig::default());
    let p0 = ddp.provenance.clone();
    let valuations = ddp.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = ddp.constraints();
    let config = SummarizeConfig {
        max_steps: 2,
        phi: ddp.phi(),
        val_func: ValFuncKind::DdpDiff,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut ddp.store, constraints, config);
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("truncated ddp is valid input");
    assert!(res.final_size() <= p0.size());
}

#[test]
fn injected_budget_trip_degrades_to_best_so_far() {
    let _g = FaultGuard::install("budget@5:3").expect("valid spec");
    let mut data = MovieLens::generate(MovieLensConfig {
        users: 15,
        movies: 4,
        ratings_per_user: 2,
        seed: 9,
    });
    let p0 = data.provenance(AggKind::Max);
    let valuations = data.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        max_steps: 10,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    // The injected trip arms even an unlimited budget. Tripping mid-run
    // keeps the best-so-far summary with a budget stop reason; tripping
    // at the very first check is a typed budget error. Never a panic.
    match summarizer.summarize(&p0, &valuations) {
        Ok(res) => {
            assert_eq!(res.stop_reason, StopReason::BudgetExhausted);
            assert!(res.final_size() <= p0.size());
            assert!(res.history.check_monotone().is_ok());
        }
        Err(e) => assert_eq!(e.kind(), ErrorKind::Budget),
    }
}

#[test]
fn flipped_taxonomy_edges_never_panic() {
    for seed in [1u64, 5, 9] {
        let _g = FaultGuard::install(&format!("taxflip@3:{seed}")).expect("valid spec");
        let flipped = wordnet_fragment();
        // Flips may create cycles; consistency checking reports them
        // (an input error) instead of hanging.
        if let Err(e) = check_taxonomy(&flipped) {
            assert_eq!(e.kind(), ErrorKind::Input);
        }

        // The full Wikipedia pipeline over the flipped taxonomy terminates:
        // ancestor walks are visited-set guarded.
        let mut data = Wikipedia::generate(WikipediaConfig {
            users: 8,
            pages: 6,
            edits_per_user: 2,
            major_prob: 0.5,
            seed,
        });
        let p0 = data.provenance();
        let valuations = data.valuations(ValuationClass::CancelSingleAnnotation);
        let constraints = data.constraints();
        let taxonomy = data.taxonomy.clone();
        let config = SummarizeConfig {
            max_steps: 3,
            ..Default::default()
        };
        let mut summarizer =
            Summarizer::new(&mut data.store, constraints, config).with_taxonomy(&taxonomy);
        let res = summarizer
            .summarize(&p0, &valuations)
            .expect("a flipped taxonomy degrades, it does not panic");
        assert!(res.final_size() <= p0.size());
    }
}

#[test]
fn env_spec_end_to_end_never_panics() {
    // The CI fault-injection job reruns this test under several PROX_FAULT
    // values; without the env var a representative combined spec runs.
    let spec = std::env::var("PROX_FAULT")
        .unwrap_or_else(|_| "corrupt@0.01:1,truncate@0.8:2,budget@40:3,taxflip@2:4".to_owned());
    let spec = spec.trim().to_owned();
    if spec.is_empty() || spec == "0" || spec.eq_ignore_ascii_case("off") {
        return;
    }
    let _g = FaultGuard::install(&spec).expect("CI passes a valid spec");

    // Generation (truncate site) under a possibly flipped taxonomy
    // (taxflip site, via the Wikipedia pipeline elsewhere in this suite).
    let mut data = MovieLens::generate(MovieLensConfig::default());
    let p0 = data.provenance(AggKind::Max);

    // Persistence round trip (corrupt site).
    let path = std::env::temp_dir().join(format!("prox_fault_e2e_{}.json", std::process::id()));
    save_workload(
        &path,
        &SavedWorkload::aggregated(data.store.clone(), p0.clone()),
    )
    .expect("temp dir is writable");
    let reloaded = load_workload(&path);
    let _ = std::fs::remove_file(&path);
    match reloaded {
        Ok(w) => assert!(w.provenance.is_some(), "loads are validated"),
        Err(e) => assert_eq!(e.kind(), ErrorKind::Input),
    }

    // Summarization (budget site): best-so-far or a typed budget error.
    let valuations = data.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        max_steps: 5,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    match summarizer.summarize(&p0, &valuations) {
        Ok(res) => assert!(res.final_size() <= p0.size()),
        Err(e) => assert_eq!(e.kind(), ErrorKind::Budget),
    }
}
