//! Integration tests encoding the paper's worked examples end to end,
//! across all crates.

use prox::core::{ConstraintConfig, MergeRule, SummarizeConfig, Summarizer};
use prox::provenance::{
    display, AggKind, AggValue, AnnStore, CmpOp, DbCondOp, DdpExecution, DdpExpr, DdpTransition,
    EvalOutcome, Guard, Mapping, Phi, PhiMap, Polynomial, ProvExpr, Tensor, Valuation,
    ValuationClass,
};
use prox::taxonomy::wordnet_fragment;

/// Example 2.2.1 / 2.3.1: guarded tensors and their valuation semantics.
#[test]
fn example_2_3_1_guarded_review() {
    let mut store = AnnStore::new();
    let u1 = store.add_base_with("U1", "users", &[]);
    let s1 = store.add_base_with("S1", "stats", &[]);
    let movie = store.add_base_with("MatchPoint", "movies", &[]);

    // U1 · [S1·U1 ⊗ 5 > 2] ⊗ (3, 1)
    let guard = Guard::single(
        Polynomial::var(s1).mul(&Polynomial::var(u1)),
        5.0,
        CmpOp::Gt,
        2.0,
    );
    let tensor = Tensor::guarded(Polynomial::var(u1), vec![guard], AggValue::single(3.0));
    let mut p = ProvExpr::new(AggKind::Max);
    p.push(movie, tensor);

    // S1 ↦ 0, U1 ↦ 1: the guard fails, the review is discarded.
    let mut v = Valuation::all_true();
    v.set(s1, false);
    assert_eq!(p.eval(&v).scalar_for(movie), Some(0.0));

    // S1 ↦ 1: the guard holds and the review value 3 is kept.
    v.set(s1, true);
    assert_eq!(p.eval(&v).scalar_for(movie), Some(3.0));
}

/// Example 3.1.1: the two candidate summaries of Pₛ.
#[test]
fn example_3_1_1_summaries() {
    let mut store = AnnStore::new();
    let u1 = store.add_base_with("U1", "users", &[]);
    let u2 = store.add_base_with("U2", "users", &[]);
    let u3 = store.add_base_with("U3", "users", &[]);
    let movie = store.add_base_with("MatchPoint", "movies", &[]);
    let users = store.domain("users");

    let mut p_s = ProvExpr::new(AggKind::Max);
    for (u, score) in [(u1, 3.0), (u2, 5.0), (u3, 3.0)] {
        p_s.push(
            movie,
            Tensor::new(Polynomial::var(u), AggValue::single(score)),
        );
    }

    // P′ₛ = Female ⊗ (5,2) ⊕ U₃ ⊗ (3,1)
    let female = store.add_summary("Female", users, &[u1, u2]);
    let p1 = p_s.map(&Mapping::group(&[u1, u2], female));
    assert_eq!(
        display::render_provexpr(&p1, &store),
        "Female ⊗ (5, 2) ⊕ U3 ⊗ (3, 1)"
    );

    // P″ₛ = Audience ⊗ (3,2) ⊕ U₂ ⊗ (5,1)  (first-seen tensor order)
    let audience = store.add_summary("Audience", users, &[u1, u3]);
    let p2 = p_s.map(&Mapping::group(&[u1, u3], audience));
    assert_eq!(
        display::render_provexpr(&p2, &store),
        "Audience ⊗ (3, 2) ⊕ U2 ⊗ (5, 1)"
    );
}

/// Example 3.2.3: P″ₛ is at distance 0 from Pₛ w.r.t. single-user
/// cancellations, while P′ₛ differs for the valuation cancelling U₂.
#[test]
fn example_3_2_3_distances() {
    let mut store = AnnStore::new();
    let u1 = store.add_base_with("U1", "users", &[]);
    let u2 = store.add_base_with("U2", "users", &[]);
    let u3 = store.add_base_with("U3", "users", &[]);
    let movie = store.add_base_with("MatchPoint", "movies", &[]);
    let users = store.domain("users");

    let mut p_s = ProvExpr::new(AggKind::Max);
    for (u, score) in [(u1, 3.0), (u2, 5.0), (u3, 3.0)] {
        p_s.push(
            movie,
            Tensor::new(Polynomial::var(u), AggValue::single(score)),
        );
    }
    let vals = ValuationClass::CancelSingleAnnotation.generate(&store, &[u1, u2, u3], &[]);
    let engine = prox::core::DistanceEngine::new(
        &p_s,
        &vals,
        PhiMap::uniform(Phi::Or),
        prox::core::ValFuncKind::AbsDiff,
    );

    let audience = store.add_summary("Audience", users, &[u1, u3]);
    let h2 = Mapping::group(&[u1, u3], audience);
    let p2 = p_s.map(&h2);
    assert_eq!(engine.distance(&p2, &h2, &store, &Default::default()), 0.0);

    let female = store.add_summary("Female", users, &[u1, u2]);
    let h1 = Mapping::group(&[u1, u2], female);
    let p1 = p_s.map(&h1);
    assert!(engine.distance(&p1, &h1, &store, &Default::default()) > 0.0);
}

/// Example 4.2.3: the full algorithm flow picks Audience over Female.
#[test]
fn example_4_2_3_algorithm_flow() {
    let mut store = AnnStore::new();
    let u1 = store.add_base_with("U1", "users", &[("gender", "F"), ("role", "audience")]);
    let u2 = store.add_base_with("U2", "users", &[("gender", "F"), ("role", "critic")]);
    let u3 = store.add_base_with("U3", "users", &[("gender", "M"), ("role", "audience")]);
    let mp = store.add_base_with("MatchPoint", "movies", &[]);
    let bj = store.add_base_with("BlueJasmine", "movies", &[]);
    let users = store.domain("users");

    let mut p0 = ProvExpr::new(AggKind::Max);
    for (u, score) in [(u1, 3.0), (u2, 5.0), (u3, 3.0)] {
        p0.push(mp, Tensor::new(Polynomial::var(u), AggValue::single(score)));
    }
    p0.push(bj, Tensor::new(Polynomial::var(u2), AggValue::single(4.0)));

    let vals = ValuationClass::CancelSingleAnnotation.generate(&store, &[u1, u2, u3], &[users]);
    let constraints =
        ConstraintConfig::new().allow(users, MergeRule::SharedAttribute { attrs: vec![] });
    let config = SummarizeConfig {
        w_dist: 1.0,
        w_size: 0.0,
        max_steps: 1,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut store, constraints, config);
    let res = summarizer.summarize(&p0, &vals).expect("valid config");

    assert_eq!(res.history.steps[0].merged, vec![u1, u3]);
    assert_eq!(res.final_distance, 0.0);
    assert_eq!(res.final_size(), 3);
}

/// Example 5.2.1: Wikipedia provenance with taxonomy-named groups and the
/// vector projection for the euclidean VAL-FUNC.
#[test]
fn example_5_2_1_wikipedia_summary() {
    let mut store = AnnStore::new();
    let taxonomy = wordnet_fragment();
    let users_dom = store.domain("users");
    let pages_dom = store.domain("pages");

    let editors = [
        ("SalubriousToxin", "Reviewer"),
        ("Dubulge", "Reviewer"),
        ("DrBackInTheStreet", "Top-Contributor"),
        ("JaspertheFriendlyPunk", "Top-Contributor"),
    ];
    let users: Vec<_> = editors
        .iter()
        .map(|&(n, lvl)| store.add_base_with(n, "users", &[("contribution_level", lvl)]))
        .collect();
    let pages = [
        ("Adele", "wordnet_singer"),
        ("CelineDion", "wordnet_singer"),
        ("LoriBlack", "wordnet_guitarist"),
        ("AlecBaillie", "wordnet_guitarist"),
    ];
    let page_ids: Vec<_> = pages
        .iter()
        .map(|&(n, c)| {
            let p = store.add_base_with(n, "pages", &[]);
            store.set_concept(p, taxonomy.by_name(c).expect("concept").0);
            p
        })
        .collect();

    // P₀ = (SalubriousToxin·Adele)⊗(0,1) ⊕ (Dubulge·CelineDion)⊗(1,1) ⊕
    //      (DrBack·LoriBlack)⊗(1,1) ⊕ (Jasper·AlecBaillie)⊗(1,1)
    let mut p0 = ProvExpr::new(AggKind::Sum);
    let edits = [(0usize, 0usize, 0.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0)];
    for &(u, p, t) in &edits {
        p0.push(
            page_ids[p],
            Tensor::new(
                Polynomial::var(users[u]).mul(&Polynomial::var(page_ids[p])),
                AggValue::single(t),
            ),
        );
    }

    // The summary of the example: Top-Contributors on guitarist pages,
    // Reviewers on singer pages.
    let top = store.add_summary("Top-Contributor", users_dom, &[users[2], users[3]]);
    let rev = store.add_summary("Reviewer", users_dom, &[users[0], users[1]]);
    let guitarist = store.add_summary("wordnet_guitarist", pages_dom, &[page_ids[2], page_ids[3]]);
    let singer = store.add_summary("wordnet_singer", pages_dom, &[page_ids[0], page_ids[1]]);
    let mut h = Mapping::identity();
    for (m, t) in [
        (users[2], top),
        (users[3], top),
        (users[0], rev),
        (users[1], rev),
        (page_ids[2], guitarist),
        (page_ids[3], guitarist),
        (page_ids[0], singer),
        (page_ids[1], singer),
    ] {
        h.set(m, t);
    }
    let summary = p0.map(&h);
    assert_eq!(
        display::render_provexpr(&summary, &store),
        "(Reviewer·wordnet_singer) ⊗ (1, 2) ⊕M (Top-Contributor·wordnet_guitarist) ⊗ (2, 2)"
    );

    // The valuation cancelling Dubulge: the original evaluates to
    // (Adele:0, CelineDion:0, LoriBlack:1, AlecBaillie:1); projected into
    // the summary key space it becomes (singer:0, guitarist:2).
    let v = Valuation::cancel(&[users[1]]);
    let orig = p0.eval(&v);
    assert_eq!(orig.scalar_for(page_ids[1]), Some(0.0));
    let projected = orig.project(&h);
    assert_eq!(projected.scalar_for(singer), Some(0.0));
    assert_eq!(projected.scalar_for(guitarist), Some(2.0));

    // Lifting via φ=∨ keeps Reviewer alive, so the summary answers
    // (singer:1, guitarist:2) — euclidean error 1.
    let lifted = v.lift(&h, Phi::Or, &store);
    let summ = summary.eval(&lifted);
    assert_eq!(summ.scalar_for(singer), Some(1.0));
    assert_eq!(summ.scalar_for(guitarist), Some(2.0));
    assert!((projected.euclidean(&summ) - 1.0).abs() < 1e-12);
}

/// Example 5.2.2: the DDP summary and its valuation semantics.
#[test]
fn example_5_2_2_ddp_summary() {
    let mut store = AnnStore::new();
    let c1 = store.add_base_with("c1", "cost_vars", &[]);
    let c2 = store.add_base_with("c2", "cost_vars", &[]);
    let d1 = store.add_base_with("d1", "db_vars", &[]);
    let d2 = store.add_base_with("d2", "db_vars", &[]);
    let d3 = store.add_base_with("d3", "db_vars", &[]);
    let costs_dom = store.domain("cost_vars");
    let dbs_dom = store.domain("db_vars");

    let mut p = DdpExpr::new();
    p.set_cost(c1, 3.0);
    p.set_cost(c2, 3.0);
    p.push(DdpExecution::new(vec![
        DdpTransition::user(c1),
        DdpTransition::db(vec![d1, d2], DbCondOp::NonZero),
    ]));
    p.push(DdpExecution::new(vec![
        DdpTransition::db(vec![d2, d3], DbCondOp::NonZero),
        DdpTransition::user(c2),
    ]));

    // Map d1,d3 → D1 and c1,c2 → C1: executions collapse to one.
    let big_d = store.add_summary("D1", dbs_dom, &[d1, d3]);
    let big_c = store.add_summary("C1", costs_dom, &[c1, c2]);
    let mut h = Mapping::identity();
    h.set(d1, big_d);
    h.set(d3, big_d);
    h.set(c1, big_c);
    h.set(c2, big_c);
    let summary = p.map(&h);
    assert_eq!(summary.executions().len(), 1);
    assert_eq!(
        display::render_ddp(&summary, &store),
        "⟨C1,1⟩·⟨0,[d2·D1] ≠ 0⟩"
    );

    // The valuation cancelling all C1-cost variables: v(p) = ⟨0, true⟩ and
    // the summary (with MAX φ on costs, OR on DB vars) agrees.
    let v = Valuation::cancel(&[c1, c2]);
    assert_eq!(p.eval(&v), EvalOutcome::Ddp { cost: Some(0.0) });
    let phis = PhiMap::uniform(Phi::Or).with(costs_dom, Phi::Max);
    let lifted = v.lift_map(&h, &phis, &store);
    assert!(!lifted.truth(big_c));
    assert!(lifted.truth(big_d));
    assert_eq!(summary.eval(&lifted), EvalOutcome::Ddp { cost: Some(0.0) });
}
