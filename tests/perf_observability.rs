//! Performance-observability integration tests: allocation accounting and
//! the deterministic boundary-mode profiler, exercised on a seeded
//! summarize workload.
//!
//! This binary installs the counting allocator itself (the hook is
//! per-binary, never ambient in the library), so `prox_obs::alloc::stats`
//! reports real numbers here. Registry, allocator epoch, and profiler
//! state are process-global; the tests serialize on `GATE`.

// Harness helpers outside #[test] fns still panic on broken setup.
#![allow(clippy::expect_used)]

use std::sync::Mutex;

use prox::cluster::{cluster, DissimilarityMatrix, Linkage};
use prox::core::{SummarizeConfig, Summarizer};
use prox::datasets::{MovieLens, MovieLensConfig};
use prox::obs;
use prox::provenance::{AggKind, ValuationClass};

#[global_allocator]
static ALLOC: obs::CountingAlloc = obs::CountingAlloc::system();

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// The six instrumented phases the profiler must cover (ISSUE 7).
const PHASES: [&str; 6] = [
    "summarize",
    "summarize/step",
    "summarize/step/enumerate",
    "summarize/step/score",
    "summarize/group_equivalent",
    "hac/linkage",
];

/// A seeded MovieLens summarize plus one small constrained-HAC run;
/// together they open every phase in [`PHASES`].
fn run_workload(seed: u64) {
    let mut data = MovieLens::generate(MovieLensConfig {
        users: 24,
        movies: 6,
        ratings_per_user: 2,
        seed,
    });
    let p0 = data.provenance(AggKind::Max);
    let valuations = data.valuations(ValuationClass::CancelSingleAttribute);
    let constraints = data.constraints();
    let config = SummarizeConfig {
        max_steps: 8,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut data.store, constraints, config);
    summarizer
        .summarize(&p0, &valuations)
        .expect("seeded summarize succeeds");

    let matrix = DissimilarityMatrix::from_fn(6, |i, j| (i as f64 - j as f64).abs());
    let merges = cluster(&matrix, Linkage::Single, |_, _| true);
    assert!(!merges.is_empty(), "HAC on a line of points merges");
}

#[test]
fn counting_allocator_tracks_peak_and_totals() {
    let _gate = gate();
    obs::set_enabled(true);
    obs::reset();

    let before = obs::alloc::stats();
    assert!(before.installed, "this binary installs CountingAlloc");

    run_workload(41);
    let after = obs::alloc::stats();
    assert!(after.allocs > before.allocs, "workload allocates");
    assert!(after.total_bytes > before.total_bytes);
    assert!(after.peak_bytes >= after.live_bytes, "peak bounds live");
    assert!(
        after.peak_bytes >= before.peak_bytes,
        "peak is monotone within an epoch"
    );

    // Peak never decreases, even after the memory is released.
    let s1 = obs::alloc::stats();
    let buf = vec![0u8; 4 << 20];
    let s2 = obs::alloc::stats();
    assert!(s2.peak_bytes >= s1.peak_bytes);
    assert!(s2.live_bytes > s1.live_bytes, "4MiB buffer is live");
    drop(buf);
    let s3 = obs::alloc::stats();
    assert!(s3.peak_bytes >= s2.peak_bytes, "peak survives the free");
    assert!(s3.live_bytes < s2.live_bytes, "free lowers live bytes");
}

#[test]
fn span_alloc_deltas_attributed_to_phases() {
    let _gate = gate();
    obs::set_enabled(true);
    obs::reset();

    run_workload(42);
    let snap = obs::snapshot();
    let spans = snap.get("spans").expect("snapshot has spans section");
    let bytes = |name: &str| {
        spans
            .get(name)
            .and_then(|s| s.get("alloc_bytes"))
            .and_then(|b| b.as_u64())
            .unwrap_or_else(|| panic!("span {name} has alloc_bytes"))
    };
    let allocs = |name: &str| {
        spans
            .get(name)
            .and_then(|s| s.get("allocs"))
            .and_then(|a| a.as_u64())
            .unwrap_or_else(|| panic!("span {name} has allocs"))
    };

    assert!(bytes("summarize") > 0, "summarize allocates");
    assert!(allocs("summarize") > 0);
    assert!(
        bytes("summarize/step/enumerate") > 0,
        "enumeration allocates"
    );
    // Child windows are contained in the parent's window and the deltas
    // come from one monotone global counter, so (with no concurrent
    // traffic — the gate guarantees that) the parent dominates.
    assert!(bytes("summarize") >= bytes("summarize/step/enumerate"));
    assert!(bytes("summarize") >= bytes("summarize/step/score"));
}

#[test]
fn boundary_profiler_is_deterministic_and_covers_phases() {
    let _gate = gate();
    obs::set_enabled(true);

    obs::prof::enable_boundary();
    obs::reset();
    run_workload(43);
    let first = obs::prof::folded();

    obs::prof::enable_boundary(); // clears samples
    obs::reset();
    run_workload(43);
    let second = obs::prof::folded();
    obs::prof::disable();

    assert!(!first.is_empty(), "profiler collected samples");
    assert_eq!(
        first, second,
        "boundary sampling is a pure function of the span sequence"
    );
    for phase in PHASES {
        assert!(
            covers(&first, phase),
            "folded output covers {phase}, got:\n{first}"
        );
    }
}

/// Does any folded line's stack contain `phase` as a frame?
fn covers(folded: &str, phase: &str) -> bool {
    folded.lines().any(|line| {
        let stack = line.rsplit_once(' ').map_or(line, |(s, _)| s);
        stack.split(';').any(|frame| frame == phase)
    })
}
