//! Property-based integration tests: algebraic laws of the provenance
//! model and invariants of the summarization algorithm on randomly
//! generated inputs.
//!
//! Random cases come from the workspace's deterministic splitmix64
//! generator ([`prox::robust::fault::DetRng`]) rather than an external
//! property-testing framework: every failure replays from the fixed seed,
//! and the harness runs identically offline (rule L2 — no ambient
//! entropy, even in tests that are allowed to use it).

use prox::core::{ConstraintConfig, MergeRule, SummarizeConfig, Summarizer};
use prox::provenance::{
    AggKind, AggValue, AnnId, AnnStore, Mapping, Monomial, Phi, PhiMap, Polynomial, ProvExpr,
    Summarizable, Tensor, Valuation, ValuationClass,
};
use prox::robust::fault::DetRng;

const NVARS: usize = 6;
/// Cases per algebraic law; cheap properties get the full count.
const CASES: usize = 64;
/// Cases per summarizer run; each case runs the whole algorithm.
const ALGO_CASES: usize = 24;

fn ann(ix: usize) -> AnnId {
    AnnId::from_index(ix)
}

/// A random monomial over NVARS variables, degree ≤ 3.
fn random_monomial(rng: &mut DetRng) -> Monomial {
    let degree = (rng.next_u64() % 4) as usize;
    Monomial::from_factors(
        (0..degree)
            .map(|_| ann((rng.next_u64() as usize) % NVARS))
            .collect(),
    )
}

/// A random polynomial with ≤ 4 terms, coefficients ≤ 3; occasionally the
/// constants 0 and 1 so identity edge cases are hit.
fn random_poly(rng: &mut DetRng) -> Polynomial {
    match rng.next_u64() % 10 {
        0 => return Polynomial::zero(),
        1 => return Polynomial::one(),
        _ => {}
    }
    let terms = (rng.next_u64() % 5) as usize;
    Polynomial::from_terms(
        (0..terms)
            .map(|_| (random_monomial(rng), rng.next_u64() % 3 + 1))
            .collect::<Vec<_>>(),
    )
}

/// A random valuation over the NVARS variables.
fn random_valuation(rng: &mut DetRng) -> Valuation {
    let mut v = Valuation::all_true();
    for ix in 0..NVARS {
        v.set(ann(ix), rng.next_u64().is_multiple_of(2));
    }
    v
}

/// A random mapping of the NVARS variables onto 3 targets. Targets live
/// outside the variable range to avoid chains.
fn random_mapping(rng: &mut DetRng) -> Mapping {
    let mut m = Mapping::identity();
    for from in 0..NVARS {
        let t = (rng.next_u64() as usize) % 3;
        m.set(ann(from), ann(NVARS + t));
    }
    m
}

/// Semiring laws hold for random polynomials.
#[test]
fn polynomial_semiring_laws() {
    let mut rng = DetRng::new(0x5eed_0100);
    for case in 0..CASES {
        let a = random_poly(&mut rng);
        let b = random_poly(&mut rng);
        let c = random_poly(&mut rng);
        assert_eq!(a.add(&b), b.add(&a), "⊕ comm (case {case})");
        assert_eq!(a.mul(&b), b.mul(&a), "⊗ comm (case {case})");
        assert_eq!(
            a.add(&b).add(&c),
            a.add(&b.add(&c)),
            "⊕ assoc (case {case})"
        );
        assert_eq!(
            a.mul(&b).mul(&c),
            a.mul(&b.mul(&c)),
            "⊗ assoc (case {case})"
        );
        assert_eq!(
            a.mul(&b.add(&c)),
            a.mul(&b).add(&a.mul(&c)),
            "distributivity (case {case})"
        );
        assert_eq!(a.add(&Polynomial::zero()), a, "⊕ identity (case {case})");
        assert_eq!(a.mul(&Polynomial::one()), a, "⊗ identity (case {case})");
        assert_eq!(
            a.mul(&Polynomial::zero()),
            Polynomial::zero(),
            "0 annihilates (case {case})"
        );
    }
}

/// Mapping application is a homomorphism: h(a+b) = h(a)+h(b) and
/// h(a·b) = h(a)·h(b).
#[test]
fn mapping_is_homomorphic() {
    let mut rng = DetRng::new(0x5eed_0101);
    for case in 0..CASES {
        let a = random_poly(&mut rng);
        let b = random_poly(&mut rng);
        let h = random_mapping(&mut rng);
        assert_eq!(
            a.add(&b).map(&h),
            a.map(&h).add(&b.map(&h)),
            "⊕ preserved (case {case})"
        );
        assert_eq!(
            a.mul(&b).map(&h),
            a.map(&h).mul(&b.map(&h)),
            "⊗ preserved (case {case})"
        );
    }
}

/// Boolean evaluation commutes with the counting evaluation's positivity,
/// for any valuation.
#[test]
fn eval_bool_matches_count_positivity() {
    let mut rng = DetRng::new(0x5eed_0102);
    for case in 0..CASES {
        let p = random_poly(&mut rng);
        let v = random_valuation(&mut rng);
        assert_eq!(
            p.eval_bool(&v),
            p.eval_count(&v) > 0,
            "bool vs count (case {case}, p = {p:?})"
        );
    }
}

/// Size never increases under a mapping (half of Prop 4.2.2, at the
/// polynomial level).
#[test]
fn mapping_never_grows_size() {
    let mut rng = DetRng::new(0x5eed_0103);
    for case in 0..CASES {
        let p = random_poly(&mut rng);
        let h = random_mapping(&mut rng);
        assert!(
            p.map(&h).size() <= p.size(),
            "size grew under mapping (case {case}, p = {p:?})"
        );
    }
}

/// Valuation lifting with φ=∨: a summary is false iff all members are
/// false (and with φ=∧: true iff all members are true).
#[test]
fn lift_or_semantics() {
    let mut rng = DetRng::new(0x5eed_0104);
    for case in 0..CASES {
        let bits: Vec<bool> = (0..4).map(|_| rng.next_u64().is_multiple_of(2)).collect();
        let mut store = AnnStore::new();
        let members: Vec<AnnId> = (0..4)
            .map(|i| store.add_base_with(&format!("U{i}"), "users", &[]))
            .collect();
        let dom = store.domain("users");
        let g = store.add_summary("G", dom, &members);
        let h = Mapping::group(&members, g);
        let mut v = Valuation::all_true();
        for (m, b) in members.iter().zip(&bits) {
            v.set(*m, *b);
        }
        let lifted = v.lift(&h, Phi::Or, &store);
        assert_eq!(
            lifted.truth(g),
            bits.iter().any(|&b| b),
            "∨ lift (case {case}, bits {bits:?})"
        );
        let lifted_and = v.lift(&h, Phi::And, &store);
        assert_eq!(
            lifted_and.truth(g),
            bits.iter().all(|&b| b),
            "∧ lift (case {case}, bits {bits:?})"
        );
    }
}

/// A random small ratings workload: users with random genders, 3 movies,
/// 6–11 ratings.
fn random_workload(rng: &mut DetRng) -> (AnnStore, ProvExpr, Vec<AnnId>) {
    let nusers = (rng.next_u64() % 5 + 3) as usize;
    let nratings = (rng.next_u64() % 6 + 6) as usize;
    let mut store = AnnStore::new();
    let users: Vec<AnnId> = (0..nusers)
        .map(|i| {
            let g = if rng.next_u64().is_multiple_of(2) {
                "M"
            } else {
                "F"
            };
            store.add_base_with(&format!("U{i}"), "users", &[("gender", g)])
        })
        .collect();
    let movies: Vec<AnnId> = (0..3)
        .map(|i| store.add_base_with(&format!("M{i}"), "movies", &[]))
        .collect();
    let mut p = ProvExpr::new(AggKind::Max);
    for ix in 0..nratings {
        let mix = (rng.next_u64() as usize) % movies.len();
        let stars = (rng.next_u64() % 5 + 1) as f64;
        let u = users[ix % nusers];
        p.push(
            movies[mix],
            Tensor::new(Polynomial::var(u), AggValue::single(stars)),
        );
    }
    p.simplify();
    (store, p, users)
}

/// Algorithm invariants on random workloads: monotone distance/size along
/// the run, distance in [0,1], final size ≤ initial, and the cumulative
/// mapping replays the summary from the original expression.
#[test]
fn summarizer_invariants() {
    let mut rng = DetRng::new(0x5eed_0105);
    for case in 0..ALGO_CASES {
        let (mut store, p0, users) = random_workload(&mut rng);
        let dom = store.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&store, &users, &[dom]);
        let constraints =
            ConstraintConfig::new().allow(dom, MergeRule::SharedAttribute { attrs: vec![] });
        let config = SummarizeConfig {
            w_dist: 0.5,
            w_size: 0.5,
            max_steps: 6,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut store, constraints, config);
        let res = summarizer.summarize(&p0, &vals).expect("valid config");
        assert!(
            res.final_size() <= p0.size(),
            "size grew (case {case}: {} > {})",
            res.final_size(),
            p0.size()
        );
        assert!(
            (0.0..=1.0).contains(&res.final_distance),
            "distance out of range (case {case}: {})",
            res.final_distance
        );
        assert!(
            res.history.check_monotone().is_ok(),
            "history not monotone (case {case})"
        );
        let replayed = p0.apply_mapping(&res.mapping);
        assert_eq!(
            replayed.size(),
            res.final_size(),
            "mapping replay diverged (case {case})"
        );
    }
}

/// GroupEquivalent yields distance exactly 0 (Prop 4.2.1), on random
/// workloads under the attribute valuation class.
#[test]
fn group_equivalent_zero_distance() {
    let mut rng = DetRng::new(0x5eed_0106);
    for case in 0..ALGO_CASES {
        let (mut store, p0, users) = random_workload(&mut rng);
        let dom = store.domain("users");
        let vals = ValuationClass::CancelSingleAttribute.generate(&store, &users, &[dom]);
        let constraints =
            ConstraintConfig::new().allow(dom, MergeRule::SharedAttribute { attrs: vec![] });
        let res = prox::core::group_equivalent(&p0, &vals, &mut store, &constraints, None);
        let engine = prox::core::DistanceEngine::new(
            &p0,
            &vals,
            PhiMap::uniform(Phi::Or),
            prox::core::ValFuncKind::Euclidean,
        );
        let d = engine.distance(&res.expr, &res.mapping, &store, &Default::default());
        assert_eq!(d, 0.0, "nonzero distance (case {case})");
    }
}
