//! Property-based integration tests (proptest): algebraic laws of the
//! provenance model and invariants of the summarization algorithm on
//! randomly generated inputs.

use proptest::prelude::*;
use prox::core::{ConstraintConfig, MergeRule, SummarizeConfig, Summarizer};
use prox::provenance::{
    AggKind, AggValue, AnnId, AnnStore, Mapping, Monomial, Phi, PhiMap, Polynomial, ProvExpr,
    Summarizable, Tensor, Valuation, ValuationClass,
};

const NVARS: usize = 6;

fn ann(ix: usize) -> AnnId {
    AnnId::from_index(ix)
}

/// Strategy: a random monomial over NVARS variables, degree ≤ 3.
fn arb_monomial() -> impl Strategy<Value = Monomial> {
    prop::collection::vec(0..NVARS, 0..=3)
        .prop_map(|ixs| Monomial::from_factors(ixs.into_iter().map(ann).collect()))
}

/// Strategy: a random polynomial with ≤ 4 terms, coefficients ≤ 3.
fn arb_poly() -> impl Strategy<Value = Polynomial> {
    prop::collection::vec((arb_monomial(), 1u64..=3), 0..=4).prop_map(Polynomial::from_terms)
}

/// Strategy: a random valuation over the NVARS variables.
fn arb_valuation() -> impl Strategy<Value = Valuation> {
    prop::collection::vec(any::<bool>(), NVARS).prop_map(|bits| {
        let mut v = Valuation::all_true();
        for (ix, b) in bits.into_iter().enumerate() {
            v.set(ann(ix), b);
        }
        v
    })
}

/// Strategy: a random mapping of the NVARS variables onto 3 targets.
fn arb_mapping() -> impl Strategy<Value = Mapping> {
    prop::collection::vec(0..3usize, NVARS).prop_map(|targets| {
        let mut m = Mapping::identity();
        for (from, t) in targets.into_iter().enumerate() {
            // Targets live outside the variable range to avoid chains.
            m.set(ann(from), ann(NVARS + t));
        }
        m
    })
}

proptest! {
    /// Semiring laws hold for random polynomials.
    #[test]
    fn polynomial_semiring_laws(a in arb_poly(), b in arb_poly(), c in arb_poly()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.add(&Polynomial::zero()), a.clone());
        prop_assert_eq!(a.mul(&Polynomial::one()), a.clone());
        prop_assert_eq!(a.mul(&Polynomial::zero()), Polynomial::zero());
    }

    /// Mapping application is a homomorphism: h(a+b) = h(a)+h(b) and
    /// h(a·b) = h(a)·h(b).
    #[test]
    fn mapping_is_homomorphic(a in arb_poly(), b in arb_poly(), h in arb_mapping()) {
        prop_assert_eq!(a.add(&b).map(&h), a.map(&h).add(&b.map(&h)));
        prop_assert_eq!(a.mul(&b).map(&h), a.map(&h).mul(&b.map(&h)));
    }

    /// Boolean evaluation commutes with the counting evaluation's
    /// positivity, for any valuation.
    #[test]
    fn eval_bool_matches_count_positivity(p in arb_poly(), v in arb_valuation()) {
        prop_assert_eq!(p.eval_bool(&v), p.eval_count(&v) > 0);
    }

    /// Size never increases under a mapping (half of Prop 4.2.2, at the
    /// polynomial level).
    #[test]
    fn mapping_never_grows_size(p in arb_poly(), h in arb_mapping()) {
        prop_assert!(p.map(&h).size() <= p.size());
    }

    /// Valuation lifting with φ=∨: a summary is false iff all members are
    /// false.
    #[test]
    fn lift_or_semantics(bits in prop::collection::vec(any::<bool>(), 4)) {
        let mut store = AnnStore::new();
        let members: Vec<AnnId> = (0..4)
            .map(|i| store.add_base_with(&format!("U{i}"), "users", &[]))
            .collect();
        let dom = store.domain("users");
        let g = store.add_summary("G", dom, &members);
        let h = Mapping::group(&members, g);
        let mut v = Valuation::all_true();
        for (m, b) in members.iter().zip(&bits) {
            v.set(*m, *b);
        }
        let lifted = v.lift(&h, Phi::Or, &store);
        prop_assert_eq!(lifted.truth(g), bits.iter().any(|&b| b));
        let lifted_and = v.lift(&h, Phi::And, &store);
        prop_assert_eq!(lifted_and.truth(g), bits.iter().all(|&b| b));
    }
}

/// Strategy: a random small ratings workload.
fn arb_workload() -> impl Strategy<Value = (AnnStore, ProvExpr, Vec<AnnId>)> {
    (
        3usize..8,                               // users
        prop::collection::vec(0usize..3, 6..12), // rating targets
        prop::collection::vec(1u8..=5, 6..12),   // stars
        prop::collection::vec(0usize..2, 8),     // gender bits
    )
        .prop_map(|(nusers, movies_ix, stars, genders)| {
            let mut store = AnnStore::new();
            let users: Vec<AnnId> = (0..nusers)
                .map(|i| {
                    let g = if genders[i % genders.len()] == 0 {
                        "M"
                    } else {
                        "F"
                    };
                    store.add_base_with(&format!("U{i}"), "users", &[("gender", g)])
                })
                .collect();
            let movies: Vec<AnnId> = (0..3)
                .map(|i| store.add_base_with(&format!("M{i}"), "movies", &[]))
                .collect();
            let mut p = ProvExpr::new(AggKind::Max);
            for (ix, (&mix, &s)) in movies_ix.iter().zip(&stars).enumerate() {
                let u = users[ix % nusers];
                p.push(
                    movies[mix],
                    Tensor::new(Polynomial::var(u), AggValue::single(s as f64)),
                );
            }
            p.simplify();
            (store, p, users)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm invariants on random workloads: monotone distance/size
    /// along the run, distance in [0,1], final size ≤ initial.
    #[test]
    fn summarizer_invariants((mut store, p0, users) in arb_workload()) {
        let dom = store.domain("users");
        let vals = ValuationClass::CancelSingleAnnotation.generate(&store, &users, &[dom]);
        let constraints = ConstraintConfig::new()
            .allow(dom, MergeRule::SharedAttribute { attrs: vec![] });
        let config = SummarizeConfig {
            w_dist: 0.5,
            w_size: 0.5,
            max_steps: 6,
            ..Default::default()
        };
        let mut summarizer = Summarizer::new(&mut store, constraints, config);
        let res = summarizer.summarize(&p0, &vals).expect("valid config");
        prop_assert!(res.final_size() <= p0.size());
        prop_assert!((0.0..=1.0).contains(&res.final_distance));
        prop_assert!(res.history.check_monotone().is_ok());
        // The cumulative mapping reproduces the summary from the original.
        let replayed = p0.apply_mapping(&res.mapping);
        prop_assert_eq!(replayed.size(), res.final_size());
    }

    /// GroupEquivalent yields distance exactly 0 (Prop 4.2.1), on random
    /// workloads under the attribute valuation class.
    #[test]
    fn group_equivalent_zero_distance((mut store, p0, users) in arb_workload()) {
        let dom = store.domain("users");
        let vals = ValuationClass::CancelSingleAttribute.generate(&store, &users, &[dom]);
        let constraints = ConstraintConfig::new()
            .allow(dom, MergeRule::SharedAttribute { attrs: vec![] });
        let res = prox::core::group_equivalent(&p0, &vals, &mut store, &constraints, None);
        let engine = prox::core::DistanceEngine::new(
            &p0,
            &vals,
            PhiMap::uniform(Phi::Or),
            prox::core::ValFuncKind::Euclidean,
        );
        let d = engine.distance(&res.expr, &res.mapping, &store, &Default::default());
        prop_assert_eq!(d, 0.0);
    }
}
