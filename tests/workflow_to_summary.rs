//! Integration test: the complete pipeline from application execution to
//! approximate provisioning — workflow run (Chapter 2) → guarded
//! provenance (Example 2.2.1) → guard discharge (Example 3.1.1) →
//! summarization (Chapter 4) → insights and persistence.

// Harness helpers outside #[test] fns still panic on broken setup.
#![allow(clippy::expect_used)]

use prox::core::{ConstraintConfig, MergeRule, SummarizeConfig, Summarizer};
use prox::provenance::{
    from_json, to_json, AggKind, AnnStore, SavedWorkload, Valuation, ValuationClass,
};
use prox::system::insights::group_insights;
use prox::workflow::{demo_database, movie_workflow, movies_provenance, reviews_relation};

fn run_workflow() -> (AnnStore, prox::provenance::ProvExpr) {
    let mut store = AnnStore::new();
    let mut db = demo_database(
        &[
            ("U1", "audience"),
            ("U2", "critic"),
            ("U3", "audience"),
            ("U4", "critic"),
        ],
        &mut store,
    );
    let audience = reviews_relation(
        "audience_reviews",
        &[
            ("U1", "MatchPoint", 3.0),
            ("U1", "Friday", 4.0),
            ("U1", "PartyGirl", 2.0),
            ("U3", "MatchPoint", 5.0),
            ("U3", "Friday", 2.0),
            ("U3", "PartyGirl", 4.0),
        ],
    );
    let critic = reviews_relation(
        "critic_reviews",
        &[
            ("U2", "MatchPoint", 4.0),
            ("U2", "Friday", 3.0),
            ("U2", "PartyGirl", 3.0),
            ("U4", "MatchPoint", 2.0),
            ("U4", "Friday", 5.0),
            ("U4", "PartyGirl", 3.0),
        ],
    );
    let ports = movie_workflow()
        .run(
            vec![
                ("audience_reviews".into(), audience),
                ("critic_reviews".into(), critic),
            ],
            &mut db,
            &mut store,
        )
        .expect("workflow runs");
    let guarded = movies_provenance(&ports["sanitized"], &mut store, AggKind::Max);
    (store, guarded)
}

#[test]
fn workflow_output_summarizes_end_to_end() {
    let (mut store, guarded) = run_workflow();
    // Guards present (one per sanitized review).
    assert!(guarded.tensors().all(|(_, t)| t.guards.len() == 1));

    // Discharge guards (statistics assumed reliable) and summarize.
    let p0 = guarded.discharge_guards(&Valuation::all_true());
    assert!(p0.size() < guarded.size());

    let users_dom = store.domain("users");
    let users: Vec<_> = ["U1", "U2", "U3", "U4"]
        .iter()
        .map(|u| store.by_name(u).expect("interned by the run"))
        .collect();
    let valuations = ValuationClass::CancelSingleAnnotation.generate(&store, &users, &[users_dom]);
    let constraints =
        ConstraintConfig::new().allow(users_dom, MergeRule::SharedAttribute { attrs: vec![] });
    let config = SummarizeConfig {
        w_dist: 0.7,
        w_size: 0.3,
        max_steps: 4,
        ..Default::default()
    };
    let mut summarizer = Summarizer::new(&mut store, constraints, config);
    let res = summarizer
        .summarize(&p0, &valuations)
        .expect("valid config");
    assert!(res.final_size() < p0.size());
    assert!(res.history.check_monotone().is_ok());

    // Groups merge users sharing a role (the only attribute here).
    for step in &res.history.steps {
        let ann = store.get(step.target);
        assert!(!ann.attrs.is_empty(), "groups share the role attribute");
    }

    // Insights compare a group against its complement on real coordinates.
    if let Some(step) = res.history.steps.first() {
        let members = store.base_of(step.target);
        let ins = group_insights(&p0, step.target, &members, &store);
        assert!(!ins.is_empty());
        for i in &ins {
            assert!(i.group_value >= 0.0 && i.complement_value >= 0.0);
        }
    }
}

#[test]
fn workflow_provenance_roundtrips_through_json() {
    let (store, guarded) = run_workflow();
    let json = to_json(&SavedWorkload::aggregated(store, guarded.clone())).expect("serializes");
    let loaded: SavedWorkload = from_json(&json).expect("valid json");
    let lp = loaded.provenance.expect("aggregated");
    assert_eq!(lp, guarded);
    // Guards survive the round trip semantically: cancelling a stats
    // annotation drops the review either way.
    let s2 = loaded.store.by_name("S_U3").expect("stats annotation");
    let v = Valuation::cancel(&[s2]);
    let mp = loaded.store.by_name("MatchPoint").expect("movie");
    assert_eq!(lp.eval(&v).scalar_for(mp), guarded.eval(&v).scalar_for(mp));
    assert_eq!(lp.eval(&v).scalar_for(mp), Some(4.0), "U3's 5 dropped");
}
